// Wire protocol of the CereSZ compression service ("CSNP": CereSZ
// Network Protocol). Length-prefixed binary frames, little-endian
// throughout (matching the .f32/SDRBench and chunk-container
// conventions of the rest of the codebase).
//
// Frame layout (52-byte v4 header, then `payload_bytes` of payload;
// the first 36 bytes are the v3 header, byte for byte):
//
//   0  u32 magic "CSNP"
//   4  u8  version (= 4; v3 frames are still accepted)
//   5  u8  opcode            (Opcode)
//   6  u16 status            (Status; 0 in requests, result code in
//                             responses — nonzero = error frame whose
//                             payload is a UTF-8 message)
//   8  u64 request_id        (echoed verbatim in the response)
//   16 u64 payload_bytes
//   24 u32 payload_crc       (CRC32C of the payload bytes; 0-byte
//                             payloads carry 0)
//   28 u32 tenant_id         (0 = untenanted legacy traffic; echoed in
//                             the response)
//   32 u8  priority          (kPriorityBatch/Standard/Interactive;
//                             echoed in the response)
//   33 u8[3] reserved        (must be 0 — strict, like DECOMPRESS flags)
//   -- v4 trace context (absent from v3 frames) ------------------------
//   36 u64 trace_id          (distributed-trace id; 0 = untraced — the
//                             server synthesizes one)
//   44 u64 parent_span_id    (the sender's span the receiver's work
//                             nests under; 0 = none)
//
// Version history: v1 had a 24-byte header with no payload CRC. v2 added
// end-to-end payload integrity — every request and response payload is
// covered by CRC32C, so a bit flipped anywhere on the wire is *detected*
// (server: MALFORMED error frame on a still-usable connection; client:
// a typed CorruptResponse) instead of silently compressing or returning
// wrong bytes. The compressed container's own per-chunk CRCs cover the
// data at rest; the frame CRC covers it in flight, including the frames
// (COMPRESS requests, DECOMPRESS responses) that carry raw f32 payloads
// with no internal checksum. v3 adds multi-tenancy: a tenant id plus a
// scheduling priority in every frame, so the server's WaferCoordinator
// (src/tenant) can route requests to per-tenant wafer leases and account
// them per tenant. Tenant id 0 is the untenanted legacy path — a v3
// client that never calls set_tenant behaves exactly like a v2 one.
// The three reserved bytes must be zero (checked strictly, the same
// policy as the DECOMPRESS flags word) so future fields cannot be
// smuggled past old parsers. v4 adds the 16-byte distributed-trace
// context (trace id + parent span id) after the reserved bytes, so one
// request can be followed from a client retry attempt through the
// server's queue into engine chunks (docs/observability.md,
// "Distributed tracing"). Both versions are accepted on the wire:
// servers parse v3 and v4, echo the request's version in the response,
// and synthesize a server-side trace id for v3 (or zero-trace v4)
// requests — a v3 client is served byte-identically to before.
//
// Opcodes and payloads (request -> response):
//   PING        empty -> empty. Liveness + RTT probe.
//   COMPRESS    CompressRequest -> the chunked "CSZC" container bytes,
//               byte-identical to what ParallelEngine::compress /
//               `ceresz compress --threads N` writes for the same input.
//   DECOMPRESS  DecompressRequest -> u64 element_count + f32 values.
//   STATS       empty -> the server MetricsRegistry snapshot as JSON
//               (obs::to_json; ceresz_server_* + ceresz_engine_*).
//
// Hostile-input hardening mirrors io/chunk_container.h: every length
// field is checked against the enclosing buffer before use, payload
// sizes are bounded by an explicit anti-bomb limit (kDefaultMaxPayload,
// tightenable per server), and element counts are cross-checked against
// the actual payload size so truncated or padded frames are rejected —
// parse functions throw ceresz::Error and never read out of bounds
// (fuzzed by tests/test_robustness.cpp and tests/test_service.cpp).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "core/config.h"

namespace ceresz::net {

inline constexpr u8 kProtocolVersion = 4;
/// Still accepted on the wire (no trace context); servers echo it back.
inline constexpr u8 kProtocolVersionV3 = 3;
/// Size of the v3 header, which is also the common prefix of a v4
/// header — readers pull this many bytes, peek the version at offset 4,
/// and read kTraceContextBytes more for v4 frames.
inline constexpr std::size_t kFrameHeaderBytes = 36;
inline constexpr std::size_t kTraceContextBytes = 16;
inline constexpr std::size_t kFrameHeaderBytesV4 =
    kFrameHeaderBytes + kTraceContextBytes;

/// Full header size of a frame with this version byte. Unknown versions
/// report the v3 size — enough bytes for parse_frame_header to reject
/// them with its own typed error.
constexpr std::size_t frame_header_bytes(u8 version) {
  return version == kProtocolVersion ? kFrameHeaderBytesV4
                                     : kFrameHeaderBytes;
}

// Wire values of the frame priority byte. Kept as named u8 constants
// (not an enum class) because the net layer only transports them; the
// typed scheduling semantics live in tenant::Priority, which uses the
// same numeric values.
inline constexpr u8 kPriorityBatch = 0;
inline constexpr u8 kPriorityStandard = 1;
inline constexpr u8 kPriorityInteractive = 2;
inline constexpr u8 kPriorityMax = kPriorityInteractive;

/// Anti-bomb bound on payload_bytes: a frame can carry at most 1 GiB.
/// Servers may tighten this (ServerOptions::max_frame_payload); parsers
/// reject bigger declared payloads before allocating anything.
inline constexpr u64 kDefaultMaxPayload = u64{1} << 30;

enum class Opcode : u8 {
  kPing = 1,
  kCompress = 2,
  kDecompress = 3,
  kStats = 4,
};

/// Response result codes. The service maps ceresz::Error conditions onto
/// this enum the same way the CLI maps them onto exit codes (README
/// exit-code table): malformed/bad requests are the caller's fault,
/// kCorruptStream marks undecodable compressed data, kBusy/kDeadline
/// are the service's load-shedding verdicts, kInternal everything else.
enum class Status : u16 {
  kOk = 0,
  kMalformed = 1,        ///< unparseable frame or payload
  kUnsupported = 2,      ///< unknown version or opcode
  kBusy = 3,             ///< in-flight limit reached; retry later
  kDeadlineExpired = 4,  ///< request deadline passed before completion
  kBadRequest = 5,       ///< parseable but invalid (bad bound, empty data)
  kCorruptStream = 6,    ///< DECOMPRESS payload failed validation/CRC
  kInternal = 7,         ///< engine failure not attributable to the input
  kDraining = 8,         ///< server is draining; no new work accepted
};

const char* opcode_name(Opcode op);
const char* status_name(Status st);

/// Who a frame belongs to: the tenant routing fields of the v3 header.
/// Defaults are the untenanted legacy path (tenant 0, standard
/// priority); servers echo the request's tag back in the response.
struct TenantTag {
  u32 tenant_id = 0;
  u8 priority = kPriorityStandard;
};

/// The v4 distributed-trace fields. A zero trace_id marks an untraced
/// request (the server synthesizes an id so its own spans still group);
/// parent_span_id is the sender-side span the receiver's work nests
/// under — the client stamps its per-attempt span id here, which is how
/// the stitcher joins one server span tree to one client attempt.
struct TraceTag {
  u64 trace_id = 0;
  u64 parent_span_id = 0;
};

struct FrameHeader {
  u8 version = kProtocolVersion;
  Opcode opcode = Opcode::kPing;
  Status status = Status::kOk;
  u64 request_id = 0;
  u64 payload_bytes = 0;
  u32 payload_crc = 0;  ///< CRC32C of the payload (0 for empty payloads)
  TenantTag tenant{};   ///< v3+: tenant id + priority (0/standard = legacy)
  TraceTag trace{};     ///< v4: trace context (all-zero in v3 frames)
};

/// Append the header bytes to `out`: 36 for a v3 header, 52 for v4
/// (header.version selects; anything else is rejected). A v3 header
/// silently drops the trace fields — v3 cannot carry them.
void append_frame_header(std::vector<u8>& out, const FrameHeader& header);

/// Parse and validate a frame header: magic, version 3 or 4 (with the
/// version's full header present in `bytes`), known opcode, and
/// payload_bytes <= max_payload. Throws ceresz::Error on any violation.
FrameHeader parse_frame_header(std::span<const u8> bytes, u64 max_payload);

// --- COMPRESS ---------------------------------------------------------------
//
// payload: u32 bound_mode (0 = absolute, 1 = value-range relative)
//          u32 deadline_ms (0 = use the server default)
//          f64 bound_value (bit pattern)
//          u64 element_count
//          f32 data[element_count]

struct CompressRequest {
  core::ErrorBound bound;
  u32 deadline_ms = 0;
  std::span<const f32> data;  ///< decoded: a view into the payload buffer
};

void append_compress_request(std::vector<u8>& out, const CompressRequest& req);

/// Decode; the returned view aliases `payload`, which must stay alive
/// and unmoved while the request is in use. Throws ceresz::Error when
/// the payload is truncated, oversized, carries a non-positive or
/// non-finite bound, or its element count disagrees with its size.
CompressRequest decode_compress_request(std::span<const u8> payload);

// --- DECOMPRESS -------------------------------------------------------------
//
// payload: u32 flags (reserved, 0)
//          u32 deadline_ms (0 = use the server default)
//          u64 stream_bytes (must equal the remaining payload exactly)
//          u8  stream[stream_bytes]   (a chunked "CSZC" container)

struct DecompressRequest {
  u32 deadline_ms = 0;
  std::span<const u8> stream;  ///< decoded: a view into the payload buffer
};

void append_decompress_request(std::vector<u8>& out,
                               const DecompressRequest& req);

/// Decode; same aliasing contract and hostile-input behavior as
/// decode_compress_request.
DecompressRequest decode_decompress_request(std::span<const u8> payload);

// --- DECOMPRESS response ----------------------------------------------------
//
// payload: u64 element_count
//          f32 values[element_count]

void append_decompress_response(std::vector<u8>& out,
                                std::span<const f32> values);

/// Decode into `values` (resized to the declared element count). Throws
/// ceresz::Error on size mismatch.
void decode_decompress_response(std::span<const u8> payload,
                                std::vector<f32>& values);

// --- whole frames -----------------------------------------------------------

/// Everything a frame carries besides opcode/status/id/payload: tenant
/// routing, trace context, and the wire version to emit. Implicitly
/// constructible from a bare TenantTag so pre-v4 call sites read
/// unchanged; servers build one from the request header (echoing its
/// version and trace) via echo_meta().
struct FrameMeta {
  TenantTag tenant{};
  TraceTag trace{};
  u8 version = kProtocolVersion;

  FrameMeta() = default;
  FrameMeta(TenantTag t) : tenant(t) {}  // NOLINT(google-explicit-constructor)
  FrameMeta(TenantTag t, TraceTag tr, u8 v = kProtocolVersion)
      : tenant(t), trace(tr), version(v) {}
};

/// The response meta for a request header: same tenant, same trace,
/// same wire version — a v3 client gets a byte-identical v3 response.
FrameMeta echo_meta(const FrameHeader& request);

/// Append a complete frame (header + payload) to `out`; the header's
/// payload_crc is computed from `payload`, so frames built through this
/// function always verify. `meta` stamps the tenant/trace fields and
/// picks the wire version (defaults: untenanted, untraced, v4).
void append_frame(std::vector<u8>& out, Opcode op, Status status,
                  u64 request_id, std::span<const u8> payload,
                  FrameMeta meta = {});

/// Does `payload` match the CRC its header declared? Called by both
/// peers after the payload read, before any decoding.
bool payload_crc_ok(const FrameHeader& header, std::span<const u8> payload);

/// Append a complete error frame whose payload is `message`.
void append_error_frame(std::vector<u8>& out, Opcode op, Status status,
                        u64 request_id, std::string_view message,
                        FrameMeta meta = {});

}  // namespace ceresz::net
