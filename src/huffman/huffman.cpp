#include "huffman/huffman.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.h"

namespace ceresz::huffman {

namespace {

// Node of the temporary Huffman tree (index-linked, heap-selected).
struct Node {
  u64 weight;
  i32 left = -1;
  i32 right = -1;
  u32 symbol = 0;
  bool leaf = false;
};

void collect_depths(const std::vector<Node>& nodes, i32 root, int depth,
                    std::vector<std::pair<u32, int>>& out) {
  const Node& n = nodes[root];
  if (n.leaf) {
    out.emplace_back(n.symbol, std::max(depth, 1));
    return;
  }
  collect_depths(nodes, n.left, depth + 1, out);
  collect_depths(nodes, n.right, depth + 1, out);
}

}  // namespace

HuffmanCodec HuffmanCodec::from_histogram(
    const std::unordered_map<u32, u64>& histogram) {
  CERESZ_CHECK(!histogram.empty(), "HuffmanCodec: empty histogram");

  std::vector<Node> nodes;
  nodes.reserve(histogram.size() * 2);
  using HeapItem = std::pair<u64, i32>;  // (weight, node index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  // Deterministic tree: insert symbols in sorted order.
  std::vector<std::pair<u32, u64>> sorted(histogram.begin(), histogram.end());
  std::sort(sorted.begin(), sorted.end());
  for (auto [symbol, weight] : sorted) {
    CERESZ_CHECK(weight > 0, "HuffmanCodec: zero-count symbol in histogram");
    Node n;
    n.weight = weight;
    n.symbol = symbol;
    n.leaf = true;
    nodes.push_back(n);
    heap.emplace(weight, static_cast<i32>(nodes.size() - 1));
  }

  while (heap.size() > 1) {
    auto [wa, a] = heap.top();
    heap.pop();
    auto [wb, b] = heap.top();
    heap.pop();
    Node parent;
    parent.weight = wa + wb;
    parent.left = a;
    parent.right = b;
    nodes.push_back(parent);
    heap.emplace(parent.weight, static_cast<i32>(nodes.size() - 1));
  }

  HuffmanCodec codec;
  collect_depths(nodes, heap.top().second, 0, codec.lengths_);

  // Length-limit: clamp overlong codes, then repair the Kraft sum by
  // lengthening the shortest codes until sum(2^-len) <= 1.
  bool clamped = false;
  for (auto& [sym, len] : codec.lengths_) {
    if (len > kMaxCodeLen) {
      len = kMaxCodeLen;
      clamped = true;
    }
  }
  if (clamped) {
    auto kraft = [&]() {
      long double s = 0;
      for (auto& [sym, len] : codec.lengths_) s += std::pow(2.0L, -len);
      return s;
    };
    std::sort(codec.lengths_.begin(), codec.lengths_.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    std::size_t i = 0;
    while (kraft() > 1.0L) {
      while (codec.lengths_[i].second >= kMaxCodeLen) {
        i = (i + 1) % codec.lengths_.size();
      }
      ++codec.lengths_[i].second;
      i = (i + 1) % codec.lengths_.size();
    }
  }

  codec.assign_canonical_codes();
  return codec;
}

HuffmanCodec HuffmanCodec::from_symbols(std::span<const u32> symbols) {
  std::unordered_map<u32, u64> hist;
  for (u32 s : symbols) ++hist[s];
  return from_histogram(hist);
}

void HuffmanCodec::assign_canonical_codes() {
  std::sort(lengths_.begin(), lengths_.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  max_len_ = lengths_.back().second;
  CERESZ_CHECK(max_len_ <= kMaxCodeLen, "HuffmanCodec: code length overflow");

  first_code_.assign(max_len_ + 1, 0);
  first_index_.assign(max_len_ + 1, 0);
  count_.assign(max_len_ + 1, 0);
  symbols_.clear();
  symbols_.reserve(lengths_.size());
  codes_.clear();

  u64 code = 0;
  int prev_len = lengths_.front().second;
  first_code_[prev_len] = 0;
  first_index_[prev_len] = 0;
  for (std::size_t i = 0; i < lengths_.size(); ++i) {
    const auto [symbol, len] = lengths_[i];
    if (len != prev_len) {
      code <<= (len - prev_len);
      first_code_[len] = code;
      first_index_[len] = static_cast<u32>(i);
      prev_len = len;
    }
    ++count_[len];
    codes_[symbol] = {code, len};
    symbols_.push_back(symbol);
    ++code;
  }
}

void HuffmanCodec::serialize_table(std::vector<u8>& out) const {
  const u32 n = static_cast<u32>(lengths_.size());
  for (int b = 0; b < 4; ++b) out.push_back(static_cast<u8>((n >> (8 * b)) & 0xff));
  for (const auto& [symbol, len] : lengths_) {
    for (int b = 0; b < 4; ++b) {
      out.push_back(static_cast<u8>((symbol >> (8 * b)) & 0xff));
    }
    out.push_back(static_cast<u8>(len));
  }
}

HuffmanCodec HuffmanCodec::deserialize_table(std::span<const u8> in,
                                             std::size_t& consumed) {
  CERESZ_CHECK(in.size() >= 4, "HuffmanCodec: truncated table");
  u32 n = 0;
  for (int b = 0; b < 4; ++b) n |= static_cast<u32>(in[b]) << (8 * b);
  CERESZ_CHECK(n > 0, "HuffmanCodec: empty table");
  const std::size_t need = 4 + static_cast<std::size_t>(n) * 5;
  CERESZ_CHECK(in.size() >= need, "HuffmanCodec: truncated table entries");

  HuffmanCodec codec;
  codec.lengths_.reserve(n);
  std::size_t pos = 4;
  for (u32 i = 0; i < n; ++i) {
    u32 symbol = 0;
    for (int b = 0; b < 4; ++b) {
      symbol |= static_cast<u32>(in[pos + b]) << (8 * b);
    }
    const int len = in[pos + 4];
    CERESZ_CHECK(len >= 1 && len <= kMaxCodeLen,
                 "HuffmanCodec: corrupt code length");
    codec.lengths_.emplace_back(symbol, len);
    pos += 5;
  }
  consumed = pos;
  codec.assign_canonical_codes();
  return codec;
}

void HuffmanCodec::encode_one(u32 symbol, BitWriter& writer) const {
  auto it = codes_.find(symbol);
  CERESZ_CHECK(it != codes_.end(),
               "HuffmanCodec: symbol not present in the code table");
  const auto [code, len] = it->second;
  // Emit MSB-first so canonical decoding can compare code prefixes.
  for (int b = len - 1; b >= 0; --b) {
    writer.put((code >> b) & 1ull, 1);
  }
}

void HuffmanCodec::encode(std::span<const u32> symbols,
                          BitWriter& writer) const {
  for (u32 s : symbols) encode_one(s, writer);
}

u32 HuffmanCodec::decode_one(BitReader& reader) const {
  u64 code = 0;
  int len = 0;
  for (;;) {
    code = (code << 1) | reader.get(1);
    ++len;
    CERESZ_CHECK(len <= max_len_, "HuffmanCodec: invalid code in stream");
    // Canonical property: a bit pattern of length `len` is a valid code
    // iff codes of that length exist and it falls inside their range.
    if (count_[len] > 0 && code >= first_code_[len] &&
        code < first_code_[len] + count_[len]) {
      return symbols_[first_index_[len] +
                      static_cast<u32>(code - first_code_[len])];
    }
  }
}

std::vector<u32> HuffmanCodec::decode(BitReader& reader,
                                      std::size_t count) const {
  std::vector<u32> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(decode_one(reader));
  return out;
}

int HuffmanCodec::code_length(u32 symbol) const {
  auto it = codes_.find(symbol);
  return it == codes_.end() ? 0 : it->second.second;
}

}  // namespace ceresz::huffman
