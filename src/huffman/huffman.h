// Canonical Huffman coding over 32-bit symbols.
//
// Substrate for the SZ3- and cuSZ-style baselines, which entropy-code
// quantization bins (Section 5.1.3). Code lengths come from a standard
// heap-built Huffman tree, limited to kMaxCodeLen bits with a Kraft-sum
// repair pass; codes are canonical so the table serializes as just
// (symbol, length) pairs.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitio.h"
#include "common/types.h"

namespace ceresz::huffman {

class HuffmanCodec {
 public:
  /// Longest permitted code. 48 bits stays comfortably inside the bit I/O
  /// limit and is unreachable for any realistic histogram.
  static constexpr int kMaxCodeLen = 48;

  /// Build a codec for the symbols in `histogram` (count > 0 each).
  /// A single-symbol alphabet gets a 1-bit code.
  static HuffmanCodec from_histogram(
      const std::unordered_map<u32, u64>& histogram);

  /// Convenience: histogram + build from raw symbols.
  static HuffmanCodec from_symbols(std::span<const u32> symbols);

  /// Append the code table to `out` (self-delimiting).
  void serialize_table(std::vector<u8>& out) const;

  /// Parse a table produced by serialize_table starting at `in`;
  /// `consumed` receives the number of bytes read.
  static HuffmanCodec deserialize_table(std::span<const u8> in,
                                        std::size_t& consumed);

  /// Encode `symbols`; every symbol must be in the table (throws if not).
  void encode(std::span<const u32> symbols, BitWriter& writer) const;

  /// Encode a single symbol (for token streams interleaved with raw bits).
  void encode_one(u32 symbol, BitWriter& writer) const;

  /// Decode exactly `count` symbols.
  std::vector<u32> decode(BitReader& reader, std::size_t count) const;

  /// Decode a single symbol.
  u32 decode_one(BitReader& reader) const;

  /// Code length in bits of `symbol`; 0 if the symbol is not in the table.
  int code_length(u32 symbol) const;

  std::size_t alphabet_size() const { return lengths_.size(); }

 private:
  HuffmanCodec() = default;
  void assign_canonical_codes();

  // Sorted by (length, symbol) after assign_canonical_codes().
  std::vector<std::pair<u32, int>> lengths_;        // (symbol, code length)
  std::unordered_map<u32, std::pair<u64, int>> codes_;  // symbol -> (code, len)

  // Canonical decoding tables, indexed by code length.
  std::vector<u64> first_code_;    // first canonical code of each length
  std::vector<u32> first_index_;   // index into symbols_ of that code
  std::vector<u32> count_;         // number of codes of each length
  std::vector<u32> symbols_;       // symbols in canonical order
  int max_len_ = 0;
};

}  // namespace ceresz::huffman
