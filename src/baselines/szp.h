// SZp / cuSZp baselines.
//
// Both share CereSZ's algorithm skeleton (pre-quantization, 1-D Lorenzo,
// block fixed-length encoding) but store the per-block fixed length in a
// single byte — the 32-bit fabric message constraint does not apply to a
// CPU or GPU — which is why their ratio cap on sparse data is ~128x where
// CereSZ's is ~32x (Section 5.3).
//
// cuSZp's kernel-fusion design additionally keeps a compact per-chunk
// offset table so fused GPU thread blocks can write their output
// independently; SZp's simpler OpenMP implementation does not, giving it
// slightly higher ratios on some datasets (Section 5.3's CESM-ATM/HACC
// remark).
#pragma once

#include "baselines/compressor.h"
#include "core/stream_codec.h"

namespace ceresz::baselines {

class SzpCompressor : public Compressor {
 public:
  /// `chunk_offset_blocks` > 0 adds a u32 offset entry per that many
  /// blocks (the cuSZp variant); 0 disables the table (plain SZp).
  explicit SzpCompressor(std::string name, u32 chunk_offset_blocks = 0);

  std::string name() const override { return name_; }
  std::vector<u8> compress(const data::Field& field, core::ErrorBound bound,
                           BaselineStats* stats) const override;
  std::vector<f32> decompress(std::span<const u8> stream) const override;

 private:
  std::string name_;
  u32 chunk_offset_blocks_;
  core::StreamCodec codec_;
};

}  // namespace ceresz::baselines
