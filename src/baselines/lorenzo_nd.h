// N-dimensional (1/2/3-D) Lorenzo predictors shared by the SZ3- and
// cuSZ-style baselines.
//
// The d-dimensional Lorenzo predictor estimates an element from its
// already-visited corner neighbors with alternating signs:
//   1-D:  v[i-1]
//   2-D:  v[i-1,j] + v[i,j-1] - v[i-1,j-1]
//   3-D:  faces - edges + corner (7 terms)
// Out-of-range neighbors read as zero.
#pragma once

#include <array>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace ceresz::baselines {

/// Row-major geometry helper over up to 3 dims (last dim fastest).
struct GridShape {
  std::array<std::size_t, 3> dims{1, 1, 1};  // {z, y, x} sizes
  int ndims = 1;

  static GridShape from_dims(const std::vector<std::size_t>& d) {
    CERESZ_CHECK(!d.empty() && d.size() <= 3,
                 "GridShape: only 1-3 dimensional fields supported");
    GridShape s;
    s.ndims = static_cast<int>(d.size());
    // Right-align: dims {a} -> {1,1,a}; {a,b} -> {1,a,b}.
    for (std::size_t i = 0; i < d.size(); ++i) {
      s.dims[3 - d.size() + i] = d[i];
    }
    return s;
  }

  std::size_t size() const { return dims[0] * dims[1] * dims[2]; }
};

/// Lorenzo prediction from reconstructed values at flat position (z,y,x).
/// Works for any arithmetic T (f64 for SZ3, i64 for cuSZ's integer form).
template <typename T, typename Src>
T lorenzo_predict(const Src& v, const GridShape& g, std::size_t z,
                  std::size_t y, std::size_t x) {
  const std::size_t sy = g.dims[2];           // stride of y
  const std::size_t sz = g.dims[1] * g.dims[2];  // stride of z
  const std::size_t i = z * sz + y * sy + x;
  auto at = [&](std::size_t dz, std::size_t dy, std::size_t dx) -> T {
    if ((dz && z == 0) || (dy && y == 0) || (dx && x == 0)) return T{0};
    return static_cast<T>(v[i - dz * sz - dy * sy - dx]);
  };
  switch (g.ndims) {
    case 1:
      return at(0, 0, 1);
    case 2:
      return at(0, 1, 0) + at(0, 0, 1) - at(0, 1, 1);
    default:
      return at(0, 0, 1) + at(0, 1, 0) + at(1, 0, 0) - at(0, 1, 1) -
             at(1, 0, 1) - at(1, 1, 0) + at(1, 1, 1);
  }
}

}  // namespace ceresz::baselines
