#include "baselines/device_model.h"

namespace ceresz::baselines {

const char* to_string(Device device) {
  switch (device) {
    case Device::kEpyc7742: return "AMD EPYC 7742 (64C)";
    case Device::kA100: return "NVIDIA A100 (108 SMs)";
  }
  return "?";
}

f64 DeviceThroughputModel::compress_gbps(const BaselineStats& stats) const {
  const f64 zero = stats.zero_fraction;
  const f64 bits = stats.mean_code_bits;
  f64 gbps = base_gbps;
  gbps *= 1.0 + zero_boost * zero;
  gbps /= 1.0 + bits_penalty * bits;
  return gbps;
}

f64 DeviceThroughputModel::decompress_gbps(const BaselineStats& stats) const {
  return compress_gbps(stats) * decomp_factor;
}

// Calibration notes (all against the paper's Figures 11-12 and Section 5):
//   cuSZp: dense payloads (~10 mean bits) land near 93 GB/s; heavy
//     zero-block streams (RTM/NYX at REL 1e-2) reach the ~190 GB/s that
//     makes CereSZ's smallest speedup 2.43x.
//   SZp:   OpenMP on 64 EPYC cores; an order of magnitude under cuSZp.
//   cuSZ:  Huffman codebook construction and encoding dominate; its
//     decompression is slower than compression (serial-ish decode).
//   SZ3:   single-threaded CPU, sub-GB/s.
DeviceThroughputModel cuszp_model() {
  return {"cuSZp", Device::kA100, /*base=*/85.0, /*zero_boost=*/0.55,
          /*bits_penalty=*/0.020, /*decomp_factor=*/1.28};
}

DeviceThroughputModel szp_model() {
  return {"SZp", Device::kEpyc7742, /*base=*/14.0, /*zero_boost=*/0.5,
          /*bits_penalty=*/0.018, /*decomp_factor=*/1.15};
}

DeviceThroughputModel cusz_model() {
  return {"cuSZ", Device::kA100, /*base=*/38.0, /*zero_boost=*/0.25,
          /*bits_penalty=*/0.015, /*decomp_factor=*/0.85};
}

DeviceThroughputModel sz3_model() {
  return {"SZ", Device::kEpyc7742, /*base=*/0.55, /*zero_boost=*/0.25,
          /*bits_penalty=*/0.010, /*decomp_factor=*/1.05};
}

}  // namespace ceresz::baselines
