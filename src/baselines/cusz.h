// cuSZ-style baseline: pre-quantization ("dual-quant") + exact integer
// N-dimensional Lorenzo + Huffman-coded residuals.
//
// cuSZ shares CereSZ's pre-quantization, so at the same error bound it
// reconstructs the *same* values as CereSZ/cuSZp/SZp (the basis of
// Section 5.4's identical-PSNR/SSIM observation); only the lossless
// encoding differs (Huffman vs fixed-length). Residuals outside the bin
// radius are stored as raw 32-bit integers.
#pragma once

#include "baselines/compressor.h"

namespace ceresz::baselines {

class CuszCompressor : public Compressor {
 public:
  explicit CuszCompressor(u32 radius = 1u << 15) : radius_(radius) {}

  std::string name() const override { return "cuSZ"; }
  std::vector<u8> compress(const data::Field& field, core::ErrorBound bound,
                           BaselineStats* stats) const override;
  std::vector<f32> decompress(std::span<const u8> stream) const override;

 private:
  u32 radius_;
};

}  // namespace ceresz::baselines
