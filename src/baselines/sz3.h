// SZ3-style baseline: error-controlled multi-dimensional Lorenzo
// prediction + Huffman-coded quantization bins + raw outlier storage.
//
// This is the high-ratio/low-throughput end of the design space (Table 5:
// SZ wins every ratio column; Section 5.2: "routinely less than 1 GB/s").
// The predictor uses previously *reconstructed* neighbors, so prediction
// errors cannot accumulate and the ε guarantee holds element-wise. Values
// whose quantized residual falls outside the bin radius are stored raw
// ("unpredictable" outliers), as in SZ.
//
// Differences from the real SZ3: no spline interpolation mode and no
// best-fit lossless backend — multi-dim Lorenzo + Huffman is the part of
// SZ3's design space that drives the paper's comparison (spatial
// aggregation + entropy coding vs CereSZ's throughput-first design).
#pragma once

#include "baselines/compressor.h"

namespace ceresz::baselines {

class Sz3Compressor : public Compressor {
 public:
  /// `radius`: quantization bins span [-radius, radius); residuals outside
  /// become outliers. 2^15 matches SZ's default capacity.
  explicit Sz3Compressor(u32 radius = 1u << 15) : radius_(radius) {}

  std::string name() const override { return "SZ"; }
  std::vector<u8> compress(const data::Field& field, core::ErrorBound bound,
                           BaselineStats* stats) const override;
  std::vector<f32> decompress(std::span<const u8> stream) const override;

 private:
  u32 radius_;
};

}  // namespace ceresz::baselines
