// Analytic device throughput model for the cross-platform comparison
// (Figures 11-12).
//
// We cannot measure an NVIDIA A100 or a 64-core EPYC on this host, so
// baseline *throughput* (and only throughput — ratios and quality are
// measured from the real reimplementations) comes from a small analytic
// model calibrated against the paper's reported numbers:
//   - cuSZp averages ~93 GB/s compression / ~120 GB/s decompression
//     (CereSZ's 457.35 / 581.31 GB/s averages divided by its reported
//     4.9x / 4.8x speedups);
//   - cuSZ sits well below cuSZp (Huffman stages), SZp (OpenMP EPYC) in
//     the tens of GB/s, and SZ3 "routinely less than 1 GB/s" (Section 5.3).
//
// Shape effects mirror the mechanisms the paper describes: zero blocks
// speed all block-wise codecs up (Section 5.2's error-bound/throughput
// coupling), and denser bit payloads slow them down. Every number derived
// from this model is labeled "modeled" in the benches.
#pragma once

#include <string>

#include "baselines/compressor.h"
#include "common/types.h"

namespace ceresz::baselines {

/// Which paper platform a baseline runs on.
enum class Device {
  kEpyc7742,  ///< AMD EPYC 7742, 64C/128T (CPU baselines)
  kA100,      ///< NVIDIA A100, 108 SMs, 40 GB (GPU baselines)
};

const char* to_string(Device device);

/// Calibrated throughput curve of one baseline compressor.
struct DeviceThroughputModel {
  std::string compressor;
  Device device = Device::kA100;
  f64 base_gbps = 0.0;      ///< dense-data compression throughput
  f64 zero_boost = 0.0;     ///< relative speedup at 100% zero blocks
  f64 bits_penalty = 0.0;   ///< relative slowdown per mean payload bit
  f64 decomp_factor = 1.0;  ///< decompression vs compression

  /// Modeled compression throughput for a run with the given stream shape.
  f64 compress_gbps(const BaselineStats& stats) const;

  /// Modeled decompression throughput.
  f64 decompress_gbps(const BaselineStats& stats) const;
};

/// Calibrated models of the four baselines.
DeviceThroughputModel szp_model();
DeviceThroughputModel cuszp_model();
DeviceThroughputModel sz3_model();
DeviceThroughputModel cusz_model();

}  // namespace ceresz::baselines
