#include "baselines/sz3.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "baselines/lorenzo_nd.h"
#include "common/bitio.h"
#include "common/error.h"
#include "common/stats.h"
#include "huffman/huffman.h"

namespace ceresz::baselines {

namespace {

constexpr char kMagic[4] = {'S', 'Z', '3', 'R'};

void append_u32(std::vector<u8>& out, u32 v) {
  for (int b = 0; b < 4; ++b) out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
}
void append_u64(std::vector<u8>& out, u64 v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
}
u32 read_u32(const u8* p) {
  u32 v = 0;
  for (int b = 0; b < 4; ++b) v |= static_cast<u32>(p[b]) << (8 * b);
  return v;
}
u64 read_u64(const u8* p) {
  u64 v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<u64>(p[b]) << (8 * b);
  return v;
}

}  // namespace

std::vector<u8> Sz3Compressor::compress(const data::Field& field,
                                        core::ErrorBound bound,
                                        BaselineStats* stats) const {
  const auto& values = field.values;
  CERESZ_CHECK(!values.empty(), "Sz3Compressor: empty field");
  const GridShape shape = GridShape::from_dims(field.dims);
  CERESZ_CHECK(shape.size() == values.size(),
               "Sz3Compressor: dims do not match data size");

  const f64 eps = bound.resolve(summarize(values).range());
  const f64 two_eps = 2.0 * eps;
  const u32 escape = 2 * radius_;  // symbol marking an outlier

  std::vector<f32> recon(values.size());
  std::vector<u32> symbols(values.size());
  std::vector<f32> outliers;

  std::size_t idx = 0;
  for (std::size_t z = 0; z < shape.dims[0]; ++z) {
    for (std::size_t y = 0; y < shape.dims[1]; ++y) {
      for (std::size_t x = 0; x < shape.dims[2]; ++x, ++idx) {
        const f64 pred = lorenzo_predict<f64>(recon, shape, z, y, x);
        const f64 diff = static_cast<f64>(values[idx]) - pred;
        const f64 qf = std::floor(diff / two_eps + 0.5);
        if (qf >= -static_cast<f64>(radius_) &&
            qf < static_cast<f64>(radius_)) {
          const i64 q = static_cast<i64>(qf);
          const f64 r = pred + static_cast<f64>(q) * two_eps;
          // The bin must actually satisfy the bound after f32 rounding;
          // otherwise fall through to outlier storage.
          if (std::fabs(r - values[idx]) <= eps) {
            symbols[idx] = static_cast<u32>(q + radius_);
            recon[idx] = static_cast<f32>(r);
            continue;
          }
        }
        symbols[idx] = escape;
        outliers.push_back(values[idx]);
        recon[idx] = values[idx];
      }
    }
  }

  // Tokenize: replace runs of the zero-residual bin with run tokens
  // (length bucket + raw offset bits). This plays the role of SZ3's
  // lossless backend: on smooth data the residual stream is dominated by
  // zeros, and run coding takes it well below Huffman's 1-bit/symbol
  // floor — the mechanism behind SZ's 100x+ ratios in Table 5.
  const u32 zero_sym = radius_;
  const u32 run_base = 2 * radius_ + 1;  // token for run bucket b: run_base+b
  std::vector<u32> tokens;
  std::vector<std::pair<u32, int>> run_bits;  // (offset, width) per run token
  tokens.reserve(symbols.size() / 4);
  for (std::size_t i = 0; i < symbols.size();) {
    if (symbols[i] == zero_sym) {
      std::size_t j = i;
      while (j < symbols.size() && symbols[j] == zero_sym) ++j;
      const u64 run = j - i;
      if (run >= 2) {
        const int bucket = 63 - std::countl_zero(run);
        tokens.push_back(run_base + static_cast<u32>(bucket));
        run_bits.emplace_back(static_cast<u32>(run - (u64{1} << bucket)),
                              bucket);
        i = j;
        continue;
      }
    }
    tokens.push_back(symbols[i]);
    ++i;
  }

  huffman::HuffmanCodec codec = huffman::HuffmanCodec::from_symbols(tokens);
  BitWriter writer;
  std::size_t run_at = 0;
  for (u32 t : tokens) {
    codec.encode_one(t, writer);
    if (t >= run_base) {
      const auto [offset, width] = run_bits[run_at++];
      writer.put(offset, width);
    }
  }
  std::vector<u8> bits = writer.finish();

  std::vector<u8> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(static_cast<u8>(field.dims.size()));
  for (std::size_t d : field.dims) append_u64(out, d);
  u64 eps_bits;
  std::memcpy(&eps_bits, &eps, sizeof(eps_bits));
  append_u64(out, eps_bits);
  append_u32(out, radius_);
  append_u64(out, values.size());
  codec.serialize_table(out);
  append_u64(out, bits.size());
  out.insert(out.end(), bits.begin(), bits.end());
  append_u64(out, outliers.size());
  const std::size_t raw_at = out.size();
  out.resize(out.size() + outliers.size() * sizeof(f32));
  if (!outliers.empty()) {
    std::memcpy(out.data() + raw_at, outliers.data(),
                outliers.size() * sizeof(f32));
  }

  if (stats != nullptr) {
    stats->eps_abs = eps;
    stats->element_count = values.size();
    stats->compressed_bytes = out.size();
    stats->outliers = outliers.size();
    stats->mean_code_bits = static_cast<f64>(bits.size()) * 8.0 /
                            static_cast<f64>(values.size());
  }
  return out;
}

std::vector<f32> Sz3Compressor::decompress(std::span<const u8> stream) const {
  CERESZ_CHECK(stream.size() >= 5 && std::memcmp(stream.data(), kMagic, 4) == 0,
               "Sz3Compressor: bad magic");
  std::size_t pos = 4;
  const int ndims = stream[pos++];
  CERESZ_CHECK(ndims >= 1 && ndims <= 3, "Sz3Compressor: corrupt dims");
  std::vector<std::size_t> dims(ndims);
  for (int d = 0; d < ndims; ++d) {
    CERESZ_CHECK(pos + 8 <= stream.size(), "Sz3Compressor: truncated header");
    dims[d] = read_u64(stream.data() + pos);
    pos += 8;
  }
  CERESZ_CHECK(pos + 20 <= stream.size(), "Sz3Compressor: truncated header");
  f64 eps;
  const u64 eps_bits = read_u64(stream.data() + pos);
  std::memcpy(&eps, &eps_bits, sizeof(eps));
  pos += 8;
  const u32 radius = read_u32(stream.data() + pos);
  pos += 4;
  const u64 count = read_u64(stream.data() + pos);
  pos += 8;

  // Geometry sanity before any allocation: a corrupt header must not make
  // us reserve unbounded memory.
  const GridShape shape_check = GridShape::from_dims(dims);
  CERESZ_CHECK(shape_check.size() == count,
               "Sz3Compressor: corrupt geometry");
  CERESZ_CHECK(count <= (u64{1} << 31),
               "Sz3Compressor: element count exceeds the decoder limit");

  std::size_t table_bytes = 0;
  huffman::HuffmanCodec codec =
      huffman::HuffmanCodec::deserialize_table(stream.subspan(pos), table_bytes);
  pos += table_bytes;
  CERESZ_CHECK(pos + 8 <= stream.size(), "Sz3Compressor: truncated bitstream");
  const u64 bit_bytes = read_u64(stream.data() + pos);
  pos += 8;
  CERESZ_CHECK(pos + bit_bytes <= stream.size(),
               "Sz3Compressor: truncated bitstream payload");
  BitReader reader(stream.data() + pos, bit_bytes);
  const u32 run_base = 2 * radius + 1;
  std::vector<u32> symbols;
  symbols.reserve(count);
  while (symbols.size() < count) {
    const u32 t = codec.decode_one(reader);
    if (t >= run_base) {
      const int bucket = static_cast<int>(t - run_base);
      CERESZ_CHECK(bucket < 63, "Sz3Compressor: corrupt run token");
      const u64 run = (u64{1} << bucket) + reader.get(bucket);
      CERESZ_CHECK(symbols.size() + run <= count,
                   "Sz3Compressor: run overflows element count");
      symbols.insert(symbols.end(), run, radius);
    } else {
      symbols.push_back(t);
    }
  }
  pos += bit_bytes;

  CERESZ_CHECK(pos + 8 <= stream.size(), "Sz3Compressor: truncated outliers");
  const u64 n_outliers = read_u64(stream.data() + pos);
  pos += 8;
  CERESZ_CHECK(pos + n_outliers * sizeof(f32) <= stream.size(),
               "Sz3Compressor: truncated outlier payload");
  std::vector<f32> outliers(n_outliers);
  if (n_outliers > 0) {
    std::memcpy(outliers.data(), stream.data() + pos,
                n_outliers * sizeof(f32));
  }

  const GridShape shape = GridShape::from_dims(dims);
  const f64 two_eps = 2.0 * eps;
  const u32 escape = 2 * radius;

  std::vector<f32> recon(count);
  std::size_t idx = 0;
  std::size_t outlier_at = 0;
  for (std::size_t z = 0; z < shape.dims[0]; ++z) {
    for (std::size_t y = 0; y < shape.dims[1]; ++y) {
      for (std::size_t x = 0; x < shape.dims[2]; ++x, ++idx) {
        if (symbols[idx] == escape) {
          CERESZ_CHECK(outlier_at < outliers.size(),
                       "Sz3Compressor: outlier stream exhausted");
          recon[idx] = outliers[outlier_at++];
          continue;
        }
        const f64 pred = lorenzo_predict<f64>(recon, shape, z, y, x);
        const i64 q = static_cast<i64>(symbols[idx]) - radius;
        recon[idx] = static_cast<f32>(pred + static_cast<f64>(q) * two_eps);
      }
    }
  }
  return recon;
}

std::unique_ptr<Compressor> make_sz3() {
  return std::make_unique<Sz3Compressor>();
}

}  // namespace ceresz::baselines
