// Common interface of the baseline compressors the paper compares against
// (Section 5.1.3): SZ (SZ3), SZp, cuSZ, and cuSZp — all error-bounded and
// prediction-based. Each is reimplemented here as a real, bit-exact
// round-trip codec so compression ratios and data quality are measured,
// not modeled; only cross-device *throughput* uses the DeviceModel.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/config.h"
#include "data/field.h"

namespace ceresz::baselines {

/// Per-run information a baseline reports alongside its stream.
struct BaselineStats {
  f64 eps_abs = 0.0;
  u64 element_count = 0;
  std::size_t compressed_bytes = 0;
  f64 zero_fraction = 0.0;     ///< zero/near-zero block fraction (if blockwise)
  f64 mean_code_bits = 0.0;    ///< mean encoded bits per element
  u64 outliers = 0;            ///< unpredictable values stored raw

  f64 compression_ratio() const {
    return compressed_bytes == 0
               ? 0.0
               : static_cast<f64>(element_count * sizeof(f32)) /
                     static_cast<f64>(compressed_bytes);
  }
};

class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual std::string name() const = 0;

  /// Compress one field under `bound`; `stats` (optional) receives run
  /// information used by the device throughput model.
  virtual std::vector<u8> compress(const data::Field& field,
                                   core::ErrorBound bound,
                                   BaselineStats* stats = nullptr) const = 0;

  /// Reconstruct the field's values from a stream this codec produced.
  virtual std::vector<f32> decompress(std::span<const u8> stream) const = 0;
};

/// Factory helpers for the four baselines.
std::unique_ptr<Compressor> make_szp();
std::unique_ptr<Compressor> make_cuszp();
std::unique_ptr<Compressor> make_sz3();
std::unique_ptr<Compressor> make_cusz();

}  // namespace ceresz::baselines
