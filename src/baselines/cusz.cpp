#include "baselines/cusz.h"

#include <cmath>
#include <cstring>

#include "baselines/lorenzo_nd.h"
#include "common/bitio.h"
#include "common/error.h"
#include "common/stats.h"
#include "core/prequant.h"
#include "huffman/huffman.h"

namespace ceresz::baselines {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'Z', 'R'};

void append_u32(std::vector<u8>& out, u32 v) {
  for (int b = 0; b < 4; ++b) out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
}
void append_u64(std::vector<u8>& out, u64 v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
}
u32 read_u32(const u8* p) {
  u32 v = 0;
  for (int b = 0; b < 4; ++b) v |= static_cast<u32>(p[b]) << (8 * b);
  return v;
}
u64 read_u64(const u8* p) {
  u64 v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<u64>(p[b]) << (8 * b);
  return v;
}

}  // namespace

std::vector<u8> CuszCompressor::compress(const data::Field& field,
                                         core::ErrorBound bound,
                                         BaselineStats* stats) const {
  const auto& values = field.values;
  CERESZ_CHECK(!values.empty(), "CuszCompressor: empty field");
  const GridShape shape = GridShape::from_dims(field.dims);
  CERESZ_CHECK(shape.size() == values.size(),
               "CuszCompressor: dims do not match data size");

  const f64 eps = bound.resolve(summarize(values).range());

  // Dual-quant step 1: pre-quantize the whole field (lossy, ε-bounded).
  std::vector<i32> quant(values.size());
  core::prequant(values, quant, 2.0 * eps);

  // Step 2: exact integer Lorenzo residuals (lossless from here on).
  const u32 escape = 2 * radius_;
  std::vector<u32> symbols(values.size());
  std::vector<i32> outliers;
  std::size_t idx = 0;
  for (std::size_t z = 0; z < shape.dims[0]; ++z) {
    for (std::size_t y = 0; y < shape.dims[1]; ++y) {
      for (std::size_t x = 0; x < shape.dims[2]; ++x, ++idx) {
        const i64 pred = lorenzo_predict<i64>(quant, shape, z, y, x);
        const i64 r = static_cast<i64>(quant[idx]) - pred;
        if (r >= -static_cast<i64>(radius_) && r < static_cast<i64>(radius_)) {
          symbols[idx] = static_cast<u32>(r + radius_);
        } else {
          symbols[idx] = escape;
          outliers.push_back(quant[idx]);
        }
      }
    }
  }

  huffman::HuffmanCodec codec = huffman::HuffmanCodec::from_symbols(symbols);
  BitWriter writer;
  codec.encode(symbols, writer);
  std::vector<u8> bits = writer.finish();

  std::vector<u8> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(static_cast<u8>(field.dims.size()));
  for (std::size_t d : field.dims) append_u64(out, d);
  u64 eps_bits;
  std::memcpy(&eps_bits, &eps, sizeof(eps_bits));
  append_u64(out, eps_bits);
  append_u32(out, radius_);
  append_u64(out, values.size());
  codec.serialize_table(out);
  append_u64(out, bits.size());
  out.insert(out.end(), bits.begin(), bits.end());
  append_u64(out, outliers.size());
  const std::size_t raw_at = out.size();
  out.resize(out.size() + outliers.size() * sizeof(i32));
  if (!outliers.empty()) {
    std::memcpy(out.data() + raw_at, outliers.data(),
                outliers.size() * sizeof(i32));
  }

  if (stats != nullptr) {
    stats->eps_abs = eps;
    stats->element_count = values.size();
    stats->compressed_bytes = out.size();
    stats->outliers = outliers.size();
    stats->mean_code_bits = static_cast<f64>(bits.size()) * 8.0 /
                            static_cast<f64>(values.size());
  }
  return out;
}

std::vector<f32> CuszCompressor::decompress(std::span<const u8> stream) const {
  CERESZ_CHECK(stream.size() >= 5 && std::memcmp(stream.data(), kMagic, 4) == 0,
               "CuszCompressor: bad magic");
  std::size_t pos = 4;
  const int ndims = stream[pos++];
  CERESZ_CHECK(ndims >= 1 && ndims <= 3, "CuszCompressor: corrupt dims");
  std::vector<std::size_t> dims(ndims);
  for (int d = 0; d < ndims; ++d) {
    CERESZ_CHECK(pos + 8 <= stream.size(), "CuszCompressor: truncated header");
    dims[d] = read_u64(stream.data() + pos);
    pos += 8;
  }
  CERESZ_CHECK(pos + 20 <= stream.size(), "CuszCompressor: truncated header");
  f64 eps;
  const u64 eps_bits = read_u64(stream.data() + pos);
  std::memcpy(&eps, &eps_bits, sizeof(eps));
  pos += 8;
  const u32 radius = read_u32(stream.data() + pos);
  pos += 4;
  const u64 count = read_u64(stream.data() + pos);
  pos += 8;

  // Geometry sanity before any allocation (corrupt-header guard).
  const GridShape shape_check = GridShape::from_dims(dims);
  CERESZ_CHECK(shape_check.size() == count,
               "CuszCompressor: corrupt geometry");
  CERESZ_CHECK(count <= (u64{1} << 31),
               "CuszCompressor: element count exceeds the decoder limit");

  std::size_t table_bytes = 0;
  huffman::HuffmanCodec codec =
      huffman::HuffmanCodec::deserialize_table(stream.subspan(pos), table_bytes);
  pos += table_bytes;
  CERESZ_CHECK(pos + 8 <= stream.size(), "CuszCompressor: truncated bitstream");
  const u64 bit_bytes = read_u64(stream.data() + pos);
  pos += 8;
  CERESZ_CHECK(pos + bit_bytes <= stream.size(),
               "CuszCompressor: truncated bitstream payload");
  BitReader reader(stream.data() + pos, bit_bytes);
  std::vector<u32> symbols = codec.decode(reader, count);
  pos += bit_bytes;

  CERESZ_CHECK(pos + 8 <= stream.size(), "CuszCompressor: truncated outliers");
  const u64 n_outliers = read_u64(stream.data() + pos);
  pos += 8;
  CERESZ_CHECK(pos + n_outliers * sizeof(i32) <= stream.size(),
               "CuszCompressor: truncated outlier payload");
  std::vector<i32> outliers(n_outliers);
  if (n_outliers > 0) {
    std::memcpy(outliers.data(), stream.data() + pos,
                n_outliers * sizeof(i32));
  }

  const GridShape shape = GridShape::from_dims(dims);
  const u32 escape = 2 * radius;

  std::vector<i32> quant(count);
  std::size_t idx = 0;
  std::size_t outlier_at = 0;
  for (std::size_t z = 0; z < shape.dims[0]; ++z) {
    for (std::size_t y = 0; y < shape.dims[1]; ++y) {
      for (std::size_t x = 0; x < shape.dims[2]; ++x, ++idx) {
        if (symbols[idx] == escape) {
          CERESZ_CHECK(outlier_at < outliers.size(),
                       "CuszCompressor: outlier stream exhausted");
          quant[idx] = outliers[outlier_at++];
          continue;
        }
        const i64 pred = lorenzo_predict<i64>(quant, shape, z, y, x);
        quant[idx] = static_cast<i32>(
            pred + static_cast<i64>(symbols[idx]) - radius);
      }
    }
  }

  std::vector<f32> recon(count);
  core::dequant(quant, recon, 2.0 * eps);
  return recon;
}

std::unique_ptr<Compressor> make_cusz() {
  return std::make_unique<CuszCompressor>();
}

}  // namespace ceresz::baselines
