#include "baselines/szp.h"

#include "common/error.h"

namespace ceresz::baselines {

namespace {
core::CodecConfig szp_codec_config() {
  core::CodecConfig cfg;
  cfg.block_size = 32;
  cfg.header_bytes = 1;  // the CPU/GPU codecs are not bound to 32-bit units
  cfg.zero_block_shortcut = true;
  return cfg;
}
}  // namespace

SzpCompressor::SzpCompressor(std::string name, u32 chunk_offset_blocks)
    : name_(std::move(name)),
      chunk_offset_blocks_(chunk_offset_blocks),
      codec_(szp_codec_config()) {}

std::vector<u8> SzpCompressor::compress(const data::Field& field,
                                        core::ErrorBound bound,
                                        BaselineStats* stats) const {
  core::CompressionResult r = codec_.compress(field.view(), bound);
  if (chunk_offset_blocks_ > 0) {
    // cuSZp bookkeeping: one u32 offset per chunk of blocks, appended so
    // decompression stays compatible with the plain stream parser.
    const u64 chunks =
        (r.stats.total_blocks + chunk_offset_blocks_ - 1) /
        std::max<u64>(1, chunk_offset_blocks_);
    r.stream.insert(r.stream.end(), chunks * 4, 0);
  }
  if (stats != nullptr) {
    stats->eps_abs = r.eps_abs;
    stats->element_count = r.element_count;
    stats->compressed_bytes = r.stream.size();
    stats->zero_fraction = r.stats.zero_fraction();
    stats->mean_code_bits = r.stats.mean_fixed_length + 1.0;  // + sign bit
    stats->outliers = 0;
  }
  return std::move(r.stream);
}

std::vector<f32> SzpCompressor::decompress(std::span<const u8> stream) const {
  // The optional trailing offset table is ignored by the sequential
  // parser — record sizes are self-describing.
  return codec_.decompress(stream);
}

std::unique_ptr<Compressor> make_szp() {
  return std::make_unique<SzpCompressor>("SZp");
}

std::unique_ptr<Compressor> make_cuszp() {
  return std::make_unique<SzpCompressor>("cuSZp", /*chunk_offset_blocks=*/256);
}

}  // namespace ceresz::baselines
