#include "mapping/perf_model.h"

#include <algorithm>

#include "common/error.h"
#include "mapping/pipeline_program.h"

namespace ceresz::mapping {

Cycles PerfModel::relay_c1(u32 extent) const {
  // One relay at a head: relay-task dispatch (task overhead + counter
  // update) followed by the streaming forward (setup + extent wavelets).
  return wse_.task_overhead_cycles + kRelayTaskConsume +
         wse_.relay_overhead_cycles + extent;
}

Cycles PerfModel::forward_c2(u32 extent) const {
  // Memory -> fabric DSD setup plus streaming the burst out and one hop.
  return wse_.send_overhead_cycles + extent + wse_.hop_cycles;
}

PerfPrediction PerfModel::predict(const PipelinePlan& plan, u32 rows,
                                  u32 cols, u64 blocks_total,
                                  u32 block_extent, u32 block_bytes) const {
  CERESZ_CHECK(rows >= 1 && cols >= 1, "PerfModel: empty mesh");
  const u32 pl = plan.length();
  CERESZ_CHECK(pl <= cols, "PerfModel: pipeline longer than the row");
  return predict_mesh(plan, rows, cols / pl, blocks_total, block_extent,
                      block_bytes);
}

PerfPrediction PerfModel::predict_degraded(const PipelinePlan& plan,
                                           u32 surviving_rows,
                                           u32 pipes_per_row,
                                           u64 blocks_total, u32 block_extent,
                                           u32 block_bytes) const {
  if (surviving_rows == 0 || pipes_per_row == 0) {
    // Every row dead, or the faults cut every pipeline: the mesh can run
    // nothing. Return the typed zero-throughput verdict (the C1/C2
    // constants are still reported — they describe the hardware, not the
    // placement) instead of dividing the workload by zero pipelines.
    PerfPrediction p;
    p.feasible = false;
    p.c1 = relay_c1(block_extent);
    p.c2 = forward_c2(block_extent);
    return p;
  }
  return predict_mesh(plan, surviving_rows, pipes_per_row, blocks_total,
                      block_extent, block_bytes);
}

PerfPrediction PerfModel::predict_mesh(const PipelinePlan& plan, u32 rows,
                                       u32 n_pipes, u64 blocks_total,
                                       u32 block_extent,
                                       u32 block_bytes) const {
  const u32 pl = plan.length();
  PerfPrediction p;
  p.c1 = relay_c1(block_extent);
  p.c2 = forward_c2(block_extent);

  // One round processes n_pipes blocks per row. The busiest head (head 0)
  // relays n_pipes - 1 blocks, receives its own, and computes; within a
  // pipeline each stage boundary forwards the intermediate block once.
  // Steady state is bound by the slowest stage group, but a single PE also
  // serializes its relay work with its compute (Formula 2 + Formula 3).
  p.relay_cycles_per_round =
      static_cast<Cycles>(n_pipes > 0 ? n_pipes - 1 : 0) * p.c1;
  p.recv_cycles_per_round = wse_.task_overhead_cycles + kRelayTaskConsume +
                            wse_.recv_overhead_cycles + block_extent;
  p.compute_cycles_per_round =
      wse_.task_overhead_cycles + plan.bottleneck_cycles() +
      static_cast<Cycles>(pl > 1 ? pl - 1 : 0) * p.c2;
  p.round_cycles = p.relay_cycles_per_round + p.recv_cycles_per_round +
                   p.compute_cycles_per_round;

  const u64 blocks_per_row = (blocks_total + rows - 1) / rows;
  p.rounds = (blocks_per_row + n_pipes - 1) / n_pipes;
  p.total_cycles = p.rounds * p.round_cycles;
  p.seconds = wse_.seconds(p.total_cycles);
  // An empty workload (blocks_total = 0) runs zero rounds in zero
  // seconds; report zero throughput rather than 0/0.
  p.throughput_gbps = p.seconds > 0.0
                          ? static_cast<f64>(blocks_total) * block_bytes /
                                p.seconds / 1.0e9
                          : 0.0;
  return p;
}

}  // namespace ceresz::mapping
