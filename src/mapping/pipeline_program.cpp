#include "mapping/pipeline_program.h"

#include <cstring>

#include "common/error.h"

namespace ceresz::mapping {

namespace {

using wse::Color;
using wse::Direction;
using wse::Message;

/// Mutable per-head relay state, captured by the head's task closures.
struct HeadState {
  u64 relays_needed_per_round = 0;  ///< blocks forwarded before keeping one
  u64 relayed_in_round = 0;
  u64 blocks_remaining = 0;  ///< blocks this head will still see
};

/// Reserve the local SRAM a stage group needs. A configuration whose
/// working set cannot fit in 48 KB must fail here, exactly as it would on
/// hardware (Section 4.4, assumption 2).
void reserve_group_memory(wse::PeMemory& memory, const StageGroup& group,
                          u32 block_size, PipeDirection direction) {
  memory.allocate("ceresz_stage_buffers",
                  estimate_group_memory(group, block_size, direction));
}

/// Run one stage group on a block and charge the cycles to the context.
void run_group(wse::PeContext& ctx, const SubStageExecutor& exec,
               const StageGroup& group, BlockWork& work) {
  for (const auto& stage : group.stages) {
    ctx.consume(exec.apply(work, stage));
  }
}

/// Emit the finished unit for `work` (compressed record or reconstructed
/// floats) as a host-visible result.
void emit_final(wse::PeContext& ctx, const SubStageExecutor& exec,
                PipeDirection direction, u64 tag, const BlockWork& work) {
  std::vector<u8> bytes;
  if (direction == PipeDirection::kCompress) {
    exec.assemble_record(work, bytes);
  } else {
    bytes.resize(work.output.size() * sizeof(f32));
    std::memcpy(bytes.data(), work.output.data(), bytes.size());
  }
  ctx.emit_result(tag, std::move(bytes));
}

}  // namespace

void build_row_program(wse::Fabric& fabric, u32 row, const PipelinePlan& plan,
                       PipeDirection direction,
                       std::shared_ptr<const SubStageExecutor> executor,
                       std::vector<RowBlock> row_blocks,
                       f64 ingress_cycles_per_wavelet, u32 usable_cols) {
  CERESZ_CHECK(ingress_cycles_per_wavelet >= 1.0,
               "build_row_program: ingress rate cannot beat the fabric "
               "(one wavelet per cycle)");
  CERESZ_CHECK(usable_cols <= fabric.config().cols,
               "build_row_program: usable columns exceed the mesh");
  const u32 cols = usable_cols == 0 ? fabric.config().cols : usable_cols;
  const u32 pl = plan.length();
  CERESZ_CHECK(pl >= 1 && pl <= cols,
               "build_row_program: pipeline longer than the row");
  const u32 n_pipes = cols / pl;
  CERESZ_CHECK(row_blocks.size() % n_pipes == 0,
               "build_row_program: block count must be a multiple of the "
               "pipeline count (the mapper pads)");
  const u64 rounds = row_blocks.size() / n_pipes;
  const u32 block_size = executor->codec().block_size;

  // ---- Per-pipeline programs ----
  for (u32 h = 0; h < n_pipes; ++h) {
    const u32 head_col = h * pl;
    const Color raw_in = colors::kRaw[h % 2];
    const Color raw_out = colors::kRaw[(h + 1) % 2];

    // Raw-stream routes. The head receives raw blocks up its RAMP and — if
    // it must feed pipelines to the east — re-injects them on the opposite
    // raw color, which pass-through PEs (the pipeline's stage PEs) route
    // W->E in the fabric without software involvement.
    if (h > 0) {
      fabric.router(row, head_col).set_route(raw_in, {Direction::kWest},
                                             {Direction::kRamp});
    }
    const bool feeds_east = h + 1 < n_pipes;
    if (feeds_east) {
      fabric.router(row, head_col).set_route(raw_out, {Direction::kRamp},
                                             {Direction::kEast});
      for (u32 p = 1; p < pl; ++p) {
        fabric.router(row, head_col + p)
            .set_route(raw_out, {Direction::kWest}, {Direction::kEast});
      }
    }

    // Intra-pipeline stage routes: stage p sends east on kInter[p % 2].
    for (u32 p = 0; p + 1 < pl; ++p) {
      const Color inter = colors::kInter[p % 2];
      fabric.router(row, head_col + p)
          .set_route(inter, {Direction::kRamp}, {Direction::kEast});
      fabric.router(row, head_col + p + 1)
          .set_route(inter, {Direction::kWest}, {Direction::kRamp});
    }

    // Memory accounting for every PE of the pipeline.
    for (u32 p = 0; p < pl; ++p) {
      reserve_group_memory(fabric.memory(row, head_col + p), plan.groups[p],
                           block_size, direction);
    }

    // ---- Head relay + first stage group (Figure 9(b)) ----
    auto state = std::make_shared<HeadState>();
    state->relays_needed_per_round = n_pipes - 1 - h;
    state->blocks_remaining = rounds * (n_pipes - h);

    fabric.bind_task(
        row, head_col, colors::kRelayTask,
        [state, raw_in, raw_out](wse::PeContext& ctx) {
          if (state->blocks_remaining == 0) return;  // stream exhausted
          --state->blocks_remaining;
          ctx.consume(kRelayTaskConsume);
          if (state->relayed_in_round < state->relays_needed_per_round) {
            ++state->relayed_in_round;
            ctx.forward_async(raw_in, raw_out, colors::kRelayTask);
          } else {
            state->relayed_in_round = 0;
            ctx.recv_async(raw_in, colors::kComputeTask);
          }
        });

    const bool head_is_last = pl == 1;
    const Color head_inter_out = colors::kInter[0];
    // Stage groups are copied into the closures: tasks run during
    // Fabric::run(), which may outlive the caller's plan object.
    StageGroup head_group = plan.groups[0];
    fabric.bind_task(
        row, head_col, colors::kComputeTask,
        [executor, head_group = std::move(head_group), direction, raw_in,
         head_is_last, head_inter_out](wse::PeContext& ctx) {
          Message msg = ctx.take_delivered(raw_in);
          auto work = std::static_pointer_cast<BlockWork>(msg.user);
          CERESZ_CHECK(work != nullptr, "compute: message lost its block");
          run_group(ctx, *executor, head_group, *work);
          if (head_is_last) {
            emit_final(ctx, *executor, direction, msg.tag, *work);
          } else {
            Message out;
            out.extent = msg.extent;
            out.tag = msg.tag;
            out.user = work;
            ctx.send_async(head_inter_out, std::move(out));
          }
          // Resume relaying before (in program order) the next block's
          // computation, as in Figure 9(b).
          ctx.activate(colors::kRelayTask);
        });

    fabric.activate_at(row, head_col, colors::kRelayTask, 0);

    // ---- Stage PEs (positions 1..pl-1): data-triggered on their inter
    // color ----
    for (u32 p = 1; p < pl; ++p) {
      const Color inter_in = colors::kInter[(p - 1) % 2];
      const Color inter_out = colors::kInter[p % 2];
      const bool is_last = p + 1 == pl;
      StageGroup group = plan.groups[p];
      fabric.bind_task(
          row, head_col + p, inter_in,
          [executor, group = std::move(group), direction, inter_in, inter_out,
           is_last](wse::PeContext& ctx) {
            Message msg = ctx.take_delivered(inter_in);
            auto work = std::static_pointer_cast<BlockWork>(msg.user);
            CERESZ_CHECK(work != nullptr, "stage: message lost its block");
            run_group(ctx, *executor, group, *work);
            if (is_last) {
              emit_final(ctx, *executor, direction, msg.tag, *work);
            } else {
              Message out;
              out.extent = msg.extent;
              out.tag = msg.tag;
              out.user = work;
              ctx.send_async(inter_out, std::move(out));
            }
          },
          wse::TaskTrigger::kDataTriggered);
    }
  }

  // ---- Inject the row's block stream into the first head ----
  // Blocks arrive spaced by their wavelet count times the ingress rate;
  // rate 1.0 is the saturated stream of Section 4.4's assumption 1.
  f64 arrival = 0.0;
  for (auto& rb : row_blocks) {
    Message msg;
    msg.color = colors::kRaw[0];
    msg.extent = rb.extent;
    msg.tag = rb.tag;
    msg.user = std::move(rb.work);
    arrival += static_cast<f64>(rb.extent) * ingress_cycles_per_wavelet;
    fabric.inject(row, 0, std::move(msg), static_cast<Cycles>(arrival));
  }
}

std::size_t estimate_group_memory(const StageGroup& group, u32 block_size,
                                  PipeDirection direction) {
  using core::SubStageKind;
  std::size_t bytes = 0;
  // One block of message staging: fabin/fabout DSDs stream directly
  // into/out of a PE-resident buffer.
  bytes += static_cast<std::size_t>(block_size) * 4;
  u32 shuffle_planes = 0;
  for (const auto& s : group.stages) {
    switch (s.kind) {
      case SubStageKind::kPrequantMul:
        bytes += block_size * 4;  // f32 scratch on the PE
        break;
      case SubStageKind::kPrequantAdd:
      case SubStageKind::kLorenzo:
      case SubStageKind::kPrefixSum:
      case SubStageKind::kDequantMul:
        bytes += block_size * 4;
        break;
      case SubStageKind::kSign:
        bytes += block_size * 4 + block_size / 8;
        break;
      case SubStageKind::kMax:
      case SubStageKind::kGetLength:
        bytes += 8;
        break;
      case SubStageKind::kShuffleBit:
      case SubStageKind::kUnshuffleBit:
        ++shuffle_planes;
        break;
    }
  }
  bytes += static_cast<std::size_t>(shuffle_planes) * (block_size / 8);
  if (direction == PipeDirection::kDecompress) {
    bytes += static_cast<std::size_t>(block_size) * 4 +  // record staging
             block_size / 8;
  }
  return bytes;
}

PipelinePlan plan_with_sram(const GreedyScheduler& scheduler,
                            const std::vector<core::SubStage>& stages,
                            u32 block_size, PipeDirection direction,
                            std::size_t sram_bytes) {
  auto fits = [&](const PipelinePlan& plan) {
    for (const auto& group : plan.groups) {
      if (estimate_group_memory(group, block_size, direction) > sram_bytes) {
        return false;
      }
    }
    return true;
  };

  // Preferred: the shortest cycle-balanced split that fits.
  const u32 max_pl = std::max(1u, scheduler.max_feasible_length(stages));
  for (u32 pl = 1; pl <= max_pl; ++pl) {
    PipelinePlan plan = scheduler.distribute(stages, pl);
    if (fits(plan)) return plan;
  }

  // Fallback: memory-greedy partition — fill each PE to its SRAM budget.
  PipelinePlan plan;
  plan.groups.emplace_back();
  core::PeCostModel cost;  // group cycle annotation only
  for (const auto& stage : stages) {
    StageGroup candidate = plan.groups.back();
    candidate.stages.push_back(stage);
    if (!plan.groups.back().stages.empty() &&
        estimate_group_memory(candidate, block_size, direction) >
            sram_bytes) {
      plan.groups.emplace_back();
    }
    auto& group = plan.groups.back();
    group.stages.push_back(stage);
    group.cycles += cost.substage_cycles(stage, block_size);
    CERESZ_CHECK(
        estimate_group_memory(group, block_size, direction) <= sram_bytes,
        "plan_with_sram: a single sub-stage's working set exceeds the PE's "
        "SRAM — reduce the block size");
  }
  return plan;
}

u32 choose_pipeline_length(const GreedyScheduler& scheduler,
                           const std::vector<core::SubStage>& stages,
                           u32 block_size, PipeDirection direction,
                           std::size_t sram_bytes) {
  return plan_with_sram(scheduler, stages, block_size, direction, sram_bytes)
      .length();
}

}  // namespace ceresz::mapping
