#include "mapping/report.h"

#include <sstream>

#include "common/format.h"

namespace ceresz::mapping {

std::string utilization_report(const WaferRunResult& result) {
  TextTable table({"col", "busy %", "relayed", "received", "sent", "tasks"});
  for (std::size_t c = 0; c < result.row0_stats.size(); ++c) {
    const auto& st = result.row0_stats[c];
    const f64 busy = result.makespan == 0
                         ? 0.0
                         : 100.0 * static_cast<f64>(st.busy_cycles) /
                               static_cast<f64>(result.makespan);
    table.add_row({std::to_string(c), fmt_f64(busy, 1),
                   std::to_string(st.messages_relayed),
                   std::to_string(st.messages_received),
                   std::to_string(st.messages_sent),
                   std::to_string(st.tasks_run)});
  }
  return table.render();
}

std::string run_summary(const WaferRunResult& result, u32 rows, u32 cols) {
  std::ostringstream o;
  o << "mesh " << rows << "x" << cols << ", " << result.pipelines_per_row
    << " pipeline(s)/row of length " << result.plan.length() << "; "
    << result.total_blocks << " blocks (" << result.padded_blocks
    << " padding); makespan " << result.makespan << " cycles = "
    << fmt_f64(result.seconds * 1e3, 3) << " ms @ 850 MHz; throughput "
    << fmt_f64(result.throughput_gbps, 3) << " GB/s"
    << (result.extrapolated ? " (row-extrapolated)" : "") << ".";
  if (result.degraded) {
    o << " DEGRADED: " << result.rows_failed << " row(s) failed, "
      << result.pipelines_lost << " pipeline(s) lost to faults.";
  }
  if (result.run_stats.messages_dropped != 0 ||
      result.run_stats.messages_corrupted != 0) {
    o << " Faults observed: " << result.run_stats.messages_dropped
      << " dropped, " << result.run_stats.messages_corrupted
      << " corrupted message(s).";
  }
  return o.str();
}

}  // namespace ceresz::mapping
