// Analytic performance model: Formulas (2)-(4) of Section 4.3/4.4.
//
// Per execution round of one row with TC usable columns, pipeline length
// PL, and P = TC/PL pipelines:
//   - relay time ~ P · C1 (Formula 2): every pipeline head forwards the
//     blocks destined for heads east of it, at C1 cycles per block;
//   - compute time ~ C/PL + PL · C2 (Formula 3): the per-block budget C
//     split across the pipeline plus one intermediate forward per stage
//     boundary;
// giving a total of O(C/TC + PL·C1 + PL²·C2) per block (Formula 4), i.e.
// near-linear speedup in columns and a small penalty quadratic in the
// pipeline length — which is why PL = 1 wins when memory and ingress rate
// permit (Fig. 13).
//
// C1 and C2 are derived from the same simulator constants the programs
// run under, so the model's predictions can be validated against the
// event-driven simulation (tests do exactly that).
#pragma once

#include "common/types.h"
#include "mapping/scheduler.h"
#include "wse/config.h"

namespace ceresz::mapping {

/// Committed accuracy bound for the mapper's extrapolation path: the
/// relative error between an extrapolated throughput/makespan (simulate
/// `max_exact_rows` representative rows, reuse the makespan for the full
/// mesh) and an exact full-mesh simulation of the same workload. The
/// differential suite (tests/test_wafer_sim.cpp) runs a multi-hundred-row
/// exact simulation through the parallel wse::WaferSimulator and fails if
/// the extrapolation drifts past this bound, and CI runs that suite on
/// every change — so the bound is a regression-checked contract, not an
/// aspiration. Rows are independent in CereSZ, so the residual error is
/// only the block-share remainder when rows don't divide the workload
/// evenly; 5% comfortably covers it at realistic block counts.
inline constexpr f64 kExtrapolationRelTolerance = 0.05;

struct PerfPrediction {
  /// False when the modeled mesh cannot run at all (no surviving rows or
  /// no surviving pipelines after faults): every cycle count is zero and
  /// throughput_gbps is 0 — a typed "this placement delivers nothing"
  /// verdict instead of a division-by-zero extrapolation. Admission
  /// control (src/tenant) branches on this before comparing throughput
  /// against a quota.
  bool feasible = true;
  Cycles c1 = 0;            ///< per-block software relay cost at one head
  Cycles c2 = 0;            ///< per-block intermediate forward cost
  // Per-term breakdown of one round (the quantities the trace-analytics
  // layer validates against measured fabric spans, obs/analysis):
  Cycles relay_cycles_per_round = 0;    ///< (P-1) * C1 at the head
  Cycles recv_cycles_per_round = 0;     ///< head ingesting its own block
  Cycles compute_cycles_per_round = 0;  ///< bottleneck + (PL-1) * C2
  Cycles round_cycles = 0;  ///< one round: P blocks per row
  u64 rounds = 0;           ///< rounds the busiest row executes
  Cycles total_cycles = 0;  ///< whole run
  f64 seconds = 0.0;
  f64 throughput_gbps = 0.0;
};

class PerfModel {
 public:
  explicit PerfModel(wse::WseConfig wse) : wse_(wse) {}

  /// C1: one block (of `extent` wavelets) software-relayed through a head:
  /// the relay task dispatch plus the streaming forward.
  Cycles relay_c1(u32 extent) const;

  /// C2: moving one intermediate block from a PE's memory onto the fabric
  /// and into the next PE.
  Cycles forward_c2(u32 extent) const;

  /// Predict a full run. `plan` supplies the per-PE stage costs, `rows` and
  /// `cols` the mesh, `blocks_total` the workload, `block_bytes` the
  /// original bytes per block.
  PerfPrediction predict(const PipelinePlan& plan, u32 rows, u32 cols,
                         u64 blocks_total, u32 block_extent,
                         u32 block_bytes) const;

  /// Predict a degraded run on the placement a fault plan leaves behind:
  /// `surviving_rows` rows carry blocks and the narrowest of them still
  /// runs `pipes_per_row` pipelines. The round cost is governed by that
  /// narrowest row (it deals the same block share with fewer pipelines),
  /// so the prediction is an upper bound for mixed-width survivors.
  /// A mesh with zero surviving rows or zero pipelines per row (every
  /// row dead, or the faults cut every pipeline) is not an error — it
  /// returns a `feasible = false` zero-throughput prediction, so
  /// admission/remap logic can treat "this placement delivers nothing"
  /// as a comparable verdict rather than an exception.
  PerfPrediction predict_degraded(const PipelinePlan& plan,
                                  u32 surviving_rows, u32 pipes_per_row,
                                  u64 blocks_total, u32 block_extent,
                                  u32 block_bytes) const;

 private:
  PerfPrediction predict_mesh(const PipelinePlan& plan, u32 rows,
                              u32 n_pipes, u64 blocks_total, u32 block_extent,
                              u32 block_bytes) const;

  wse::WseConfig wse_;
};

}  // namespace ceresz::mapping
