// Human-readable reports over wafer run results: per-PE utilization (the
// Fig. 10-style view) and a run summary. Used by the examples and the
// bench harnesses.
#pragma once

#include <string>

#include "mapping/wafer_mapper.h"

namespace ceresz::mapping {

/// Per-PE activity of row 0: busy fraction, relays, receives, tasks.
/// Shows where the row's time goes — relay-dominated heads on the west
/// side, compute-dominated pipelines, idle tail PEs.
std::string utilization_report(const WaferRunResult& result);

/// One-paragraph run summary (mesh, plan, makespan, throughput).
std::string run_summary(const WaferRunResult& result, u32 rows, u32 cols);

}  // namespace ceresz::mapping
