// End-to-end CereSZ on the simulated wafer: profiles the data, schedules
// the pipeline (Algorithm 1), installs the row programs, runs the fabric,
// and reports throughput exactly as the paper measures it (max PE cycle
// counter / 850 MHz, Section 5.1.1).
//
// Scaling strategy: CereSZ's rows never communicate (the basis of the
// paper's Fig. 7 linear row scaling), which the simulator exploits twice.
// First, exact runs go through wse::WaferSimulator, which partitions the
// mesh into independent row bands and simulates them concurrently on
// `sim_threads` workers (or a borrowed engine::ThreadPool) with a
// deterministic band-order merge — output is bit-identical and every
// virtual-cycle count is stable regardless of thread count, so
// `max_exact_rows` can be raised to near-wafer scale. Second, meshes
// beyond `max_exact_rows` simulate that many representative rows — each
// processing the block share a full mesh would give it — and reuse the
// measured makespan for the full mesh. Results carry an `extrapolated`
// flag; tests/test_wafer_sim.cpp validates the extrapolation against
// multi-hundred-row exact runs within kExtrapolationRelTolerance.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "core/config.h"
#include "core/costmodel.h"
#include "core/stream_codec.h"
#include "mapping/profile.h"
#include "mapping/scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wse/config.h"
#include "wse/fabric.h"

namespace ceresz::engine {
class ThreadPool;
}

namespace ceresz::mapping {

/// Canonical mapper metric names (Prometheus families).
inline constexpr const char* kMetricMapperRuns = "ceresz_mapper_runs_total";
inline constexpr const char* kMetricMapperBlocks =
    "ceresz_mapper_blocks_total";
inline constexpr const char* kMetricMapperPaddedBlocks =
    "ceresz_mapper_padded_blocks_total";
inline constexpr const char* kMetricMapperRowsFailed =
    "ceresz_mapper_rows_failed_total";
inline constexpr const char* kMetricMapperPipelinesLost =
    "ceresz_mapper_pipelines_lost_total";
inline constexpr const char* kMetricMapperMakespan =
    "ceresz_mapper_makespan_cycles";
inline constexpr const char* kMetricMapperThroughput =
    "ceresz_mapper_throughput_gbps";

/// Pre-create every mapper metric family in `reg` at zero.
void declare_mapper_metrics(obs::MetricsRegistry& reg);

struct MapperOptions {
  u32 rows = 1;
  u32 cols = 1;
  u32 pipeline_length = 1;
  core::CodecConfig codec{};
  core::PeCostModel cost{};
  /// Timing parameters of the WSE; rows/cols are overwritten per run.
  wse::WseConfig wse{};
  /// Simulate at most this many rows exactly; beyond it, extrapolate.
  u32 max_exact_rows = 4;
  /// Worker threads for the parallel simulator core (row bands run
  /// concurrently; <= 1 simulates serially). Pure host-side parallelism:
  /// the simulated outcome is bit-identical for every value. Ignored
  /// when `sim_pool` is set.
  u32 sim_threads = 1;
  /// Rows per simulated band (0 = one band per row). Like sim_threads,
  /// changing it never changes the simulated outcome.
  u32 sim_rows_per_group = 0;
  /// Borrowed worker pool to run row bands on instead of spawning one
  /// (nullable; must outlive the mapper's runs). Safe to share with the
  /// compression engine — the simulator never blocks on a full queue.
  engine::ThreadPool* sim_pool = nullptr;
  /// Ingress rate: cycles between successive wavelets arriving at each
  /// row's first PE. 1.0 = saturated (Section 4.4, assumption 1).
  f64 ingress_cycles_per_wavelet = 1.0;
  /// When true, ignore `pipeline_length` and plan the pipeline subject to
  /// the PE SRAM budget (Section 4.4, assumption 2): the shortest
  /// cycle-balanced split that fits, or a memory-greedy split if none
  /// does. The resulting length must still fit within `cols`.
  bool plan_for_sram = false;
  /// Hardware faults to survive: the mapper places no work on (or east of)
  /// a dead PE — rows with a dead PE before `pipeline_length` columns are
  /// skipped entirely, pipelines east of a mid-row dead PE are lost, and
  /// the surviving rows absorb the failed rows' block share. The plan is
  /// also installed into the Fabric, so slow-PE/drop/corrupt faults are
  /// modeled during the run. A non-empty plan requires exact simulation
  /// (rows <= max_exact_rows).
  wse::FaultPlan fault_plan{};
  /// Assemble the full output (stream / reconstruction). Requires exact
  /// simulation of all rows; automatically disabled when extrapolating.
  bool collect_output = true;
  f64 sample_fraction = 0.05;
  /// Observability (both nullable, both borrowed — must outlive the
  /// mapper's runs). `tracer` records host-clock planning spans
  /// (profile/schedule/assign/assemble) plus the fabric's virtual-clock
  /// per-PE occupancy timeline; `metrics` accumulates mapper and fabric
  /// totals across runs.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct WaferRunResult {
  Cycles makespan = 0;
  f64 seconds = 0.0;
  f64 throughput_gbps = 0.0;
  u64 total_blocks = 0;   ///< real (un-padded) blocks
  u64 padded_blocks = 0;  ///< zero blocks appended to square off rounds
  bool extrapolated = false;
  u32 rows_simulated = 0;
  u32 pipelines_per_row = 0;  ///< healthy-row pipeline count (nominal)
  // Fault-tolerance surface (nonzero only under a MapperOptions fault
  // plan): the degraded placement actually used.
  bool degraded = false;
  u32 rows_failed = 0;      ///< rows with no usable pipeline (skipped)
  u32 pipelines_lost = 0;   ///< pipelines lost to dead PEs, mesh-wide
  f64 eps_abs = 0.0;
  DataProfile profile;
  PipelinePlan plan;
  wse::RunStats run_stats;
  /// Per-PE stats of row 0 (for the Fig. 10-style profiles).
  std::vector<wse::PeStats> row0_stats;
  /// Compressed stream (compress) — byte-identical to StreamCodec.
  std::vector<u8> stream;
  /// Reconstructed values (decompress).
  std::vector<f32> output;
};

class WaferMapper {
 public:
  explicit WaferMapper(MapperOptions options);

  const MapperOptions& options() const { return options_; }

  /// Compress `data` on the simulated wafer.
  WaferRunResult compress(std::span<const f32> data,
                          core::ErrorBound bound) const;

  /// Decompress a stream produced by compress()/StreamCodec on the wafer.
  WaferRunResult decompress(std::span<const u8> stream) const;

 private:
  MapperOptions options_;
};

}  // namespace ceresz::mapping
