// Algorithm 1: evenly distributing n sub-stages across m PEs.
//
// Greedy pass (Section 4.2): with total cycle budget C, fill each of the
// first m-1 groups with consecutive sub-stages until the group reaches
// C/m, then dump the remainder into the last group. Also provides the
// paper's feasibility bound: because the Multiplication sub-stage is the
// longest indivisible unit (runtime t1), no pipeline longer than ⌊C/t1⌋
// can help.
#pragma once

#include <vector>

#include "common/types.h"
#include "core/costmodel.h"
#include "core/stage.h"

namespace ceresz::mapping {

/// The sub-stages one PE of a pipeline executes, with their modeled cost.
struct StageGroup {
  std::vector<core::SubStage> stages;
  Cycles cycles = 0;
};

/// A pipeline schedule: which PE runs which sub-stages.
struct PipelinePlan {
  std::vector<StageGroup> groups;

  u32 length() const { return static_cast<u32>(groups.size()); }

  /// The slowest group — the pipeline's steady-state bottleneck.
  Cycles bottleneck_cycles() const;

  /// Sum over all groups (= the total per-block budget C).
  Cycles total_cycles() const;
};

class GreedyScheduler {
 public:
  GreedyScheduler(core::PeCostModel cost, u32 block_size)
      : cost_(cost), block_size_(block_size) {}

  /// Algorithm 1. `m` is clamped to the number of sub-stages (a group
  /// cannot be empty). Stages keep their order; groups are contiguous.
  PipelinePlan distribute(const std::vector<core::SubStage>& stages,
                          u32 m) const;

  /// ⌊C/t1⌋ where t1 is the longest single sub-stage: the longest pipeline
  /// that can still be balanced (Section 4.2).
  u32 max_feasible_length(const std::vector<core::SubStage>& stages) const;

 private:
  core::PeCostModel cost_;
  u32 block_size_;
};

}  // namespace ceresz::mapping
