// CSL code generation: emit the Cerebras SDK source (CSL, as in the
// paper's Figures 4 and 9(b)) that realizes a scheduled CereSZ pipeline on
// real hardware.
//
// The simulator executes semantically equivalent programs; this module
// produces the deployment artifact — a layout file plus per-role PE
// programs (pipeline head with the counting relay, interior stage PEs) —
// so the repository documents exactly what would run on a CS-2. The
// generated code targets the SDK 0.8-era dialect the paper used
// (@get_dsd / fabin_dsd / @mov32 / @bind_task / @activate).
#pragma once

#include <string>

#include "mapping/pipeline_program.h"
#include "mapping/scheduler.h"
#include "wse/config.h"

namespace ceresz::mapping {

struct CslProgram {
  std::string layout;    ///< layout.csl: mesh, colors, per-PE role params
  std::string head_pe;   ///< head_pe.csl: relay + first stage group
  std::string stage_pe;  ///< stage_pe.csl: interior pipeline stages
  std::string readme;    ///< build/run notes for the SDK
};

class CslCodegen {
 public:
  CslCodegen(wse::WseConfig wse, u32 block_size)
      : wse_(wse), block_size_(block_size) {}

  /// Generate the CSL sources for `plan` on a rows x cols mesh.
  /// `direction` selects the compression or decompression kernel bodies;
  /// the relay/layout scaffolding is shared.
  CslProgram generate(const PipelinePlan& plan,
                      PipeDirection direction = PipeDirection::kCompress)
      const;

 private:
  std::string generate_layout(const PipelinePlan& plan,
                              PipeDirection direction) const;
  std::string generate_head(const PipelinePlan& plan,
                            PipeDirection direction) const;
  std::string generate_stage(const PipelinePlan& plan,
                             PipeDirection direction) const;
  std::string generate_readme(const PipelinePlan& plan,
                              PipeDirection direction) const;

  wse::WseConfig wse_;
  u32 block_size_;
};

}  // namespace ceresz::mapping
