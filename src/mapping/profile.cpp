#include "mapping/profile.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/flenc.h"
#include "core/lorenzo.h"
#include "core/prequant.h"

namespace ceresz::mapping {

DataProfile StageProfiler::profile(std::span<const f32> data,
                                   core::ErrorBound bound, u64 seed) const {
  CERESZ_CHECK(sample_fraction_ > 0.0 && sample_fraction_ <= 1.0,
               "StageProfiler: sample fraction must be in (0, 1]");
  const u32 L = codec_.block_size;

  DataProfile p;
  const ArraySummary summary = summarize(data);
  p.eps_abs = bound.resolve(summary.range());
  if (data.size() < L) {
    // Degenerate input: assume a mid-range encoding length.
    p.est_fixed_length = 8;
    p.compress_cycles =
        cost_.compress_block_cycles(L, p.est_fixed_length, false);
    p.decompress_cycles =
        cost_.decompress_block_cycles(L, p.est_fixed_length, false);
    return p;
  }

  // Sample whole blocks (the fixed length is a per-block property) until
  // we have covered ~sample_fraction of the data points.
  const u64 n_blocks = data.size() / L;
  const u64 sample_blocks = std::max<u64>(
      1, static_cast<u64>(static_cast<f64>(n_blocks) * sample_fraction_));
  Rng rng(seed);

  std::vector<i32> quant(L);
  std::vector<u32> absv(L);
  std::vector<u8> signs(L / 8);
  u32 max_fl = 0;
  u64 zero_blocks = 0;
  for (u64 s = 0; s < sample_blocks; ++s) {
    const u64 b = rng.next_below(n_blocks);
    core::prequant(data.subspan(b * L, L), quant, 2.0 * p.eps_abs);
    core::lorenzo_forward(quant, quant);
    core::split_sign(quant, absv, signs);
    const u32 m = core::block_max(absv);
    if (m == 0) {
      ++zero_blocks;
    } else {
      max_fl = std::max(max_fl, core::effective_bits(m));
    }
  }

  p.zero_fraction =
      static_cast<f64>(zero_blocks) / static_cast<f64>(sample_blocks);
  p.est_fixed_length = std::max(max_fl, 1u);
  p.compress_cycles =
      cost_.compress_block_cycles(L, p.est_fixed_length, false);
  p.decompress_cycles =
      cost_.decompress_block_cycles(L, p.est_fixed_length, false);
  return p;
}

}  // namespace ceresz::mapping
