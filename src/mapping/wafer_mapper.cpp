#include "mapping/wafer_mapper.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/error.h"
#include "mapping/perf_model.h"
#include "mapping/pipeline_program.h"
#include "obs/analysis/model_check.h"
#include "wse/wafer_sim.h"

namespace ceresz::mapping {

namespace {

/// Tags at or above this mark padding blocks (appended so every row's
/// stream is a whole number of rounds); their results are discarded.
constexpr u64 kPadTagBase = u64{1} << 63;

/// One surviving row of the (possibly degraded) placement.
struct RowSlot {
  u32 row = 0;          ///< fabric row index
  u32 n_pipes = 1;      ///< pipelines this row still runs
  u32 usable_cols = 0;  ///< columns west of the row's first dead PE
};

/// The fault-aware placement: which rows carry blocks and how wide each
/// still is, plus the degradation bookkeeping reported to the caller.
struct DegradedLayout {
  std::vector<RowSlot> slots;
  u32 stride = 0;  ///< round-robin bins blocks are dealt into
  u32 rows_failed = 0;
  u32 pipelines_lost = 0;
  bool degraded = false;
};

/// Re-run the placement on the surviving mesh: a row survives iff at
/// least one whole pipeline fits west of its first dead PE; surviving
/// rows absorb the failed rows' block share (stride shrinks to the
/// survivor count, so every block still lands somewhere).
DegradedLayout plan_layout(const MapperOptions& opt, u32 rows_sim, u32 pl,
                           bool extrapolated) {
  const bool faulted = !opt.fault_plan.empty();
  CERESZ_CHECK(!(faulted && extrapolated),
               "WaferMapper: fault-aware mapping requires exact simulation "
               "of every row (raise max_exact_rows or shrink the mesh)");
  const u32 nominal_pipes = opt.cols / pl;
  DegradedLayout layout;
  for (u32 r = 0; r < rows_sim; ++r) {
    u32 usable = opt.cols;
    if (const auto dead = opt.fault_plan.first_dead_col(r)) {
      usable = std::min(usable, *dead);
    }
    const u32 pipes = usable / pl;
    if (pipes == 0) {
      ++layout.rows_failed;
      layout.pipelines_lost += nominal_pipes;
      continue;
    }
    layout.pipelines_lost += nominal_pipes - pipes;
    layout.slots.push_back({r, pipes, usable});
  }
  CERESZ_CHECK(!layout.slots.empty(),
               "WaferMapper: the fault plan leaves no usable rows");
  layout.degraded = layout.rows_failed > 0 || layout.pipelines_lost > 0;
  layout.stride = faulted ? static_cast<u32>(layout.slots.size()) : opt.rows;
  return layout;
}

struct RowAssignment {
  std::vector<std::vector<RowBlock>> per_row;  // one entry per slot
  u64 padded_blocks = 0;
};

/// Deal blocks round-robin into `layout.stride` bins, materializing one
/// bin per surviving slot (extrapolation materializes only the simulated
/// rows of a larger healthy mesh); pad each to a multiple of the slot's
/// pipeline count.
template <typename MakeBlock>
RowAssignment assign_blocks(u64 n_blocks, const DegradedLayout& layout,
                            MakeBlock&& make_block, RowBlock pad_template) {
  RowAssignment a;
  a.per_row.resize(layout.slots.size());
  for (std::size_t s = 0; s < layout.slots.size(); ++s) {
    auto& list = a.per_row[s];
    for (u64 b = s; b < n_blocks; b += layout.stride) {
      list.push_back(make_block(b));
    }
    u64 pad_tag = kPadTagBase + s;
    while (list.size() % layout.slots[s].n_pipes != 0) {
      RowBlock pad = pad_template;
      pad.tag = pad_tag;
      pad_tag += layout.slots.size();
      // Each padding block needs its own work state.
      pad.work = std::make_shared<BlockWork>(*pad_template.work);
      list.push_back(std::move(pad));
      ++a.padded_blocks;
    }
  }
  return a;
}

void append_u16(std::vector<u8>& out, u16 v) {
  out.push_back(static_cast<u8>(v & 0xff));
  out.push_back(static_cast<u8>(v >> 8));
}

void append_u64(std::vector<u8>& out, u64 v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<u8>((v >> (8 * b)) & 0xff));
}

/// Sub-stage family label used in enriched trace thread names and in
/// the analysis layer's bottleneck attribution. Single token (no
/// spaces, ':' or '+' — those are the stages= list's separators), with
/// all bit planes of a (un)shuffle folded into one family.
const char* stage_label(core::SubStageKind kind) {
  switch (kind) {
    case core::SubStageKind::kPrequantMul: return "Multiplication";
    case core::SubStageKind::kPrequantAdd: return "Addition";
    case core::SubStageKind::kLorenzo: return "Lorenzo";
    case core::SubStageKind::kSign: return "Sign";
    case core::SubStageKind::kMax: return "Max";
    case core::SubStageKind::kGetLength: return "GetLength";
    case core::SubStageKind::kShuffleBit: return "Bitshuffle";
    case core::SubStageKind::kUnshuffleBit: return "Unshuffle";
    case core::SubStageKind::kPrefixSum: return "PrefixSum";
    case core::SubStageKind::kDequantMul: return "Dequantization";
  }
  return "Unknown";
}

/// Overwrite the fabric's plain `pe[r,c]` thread names with the
/// schedule: `pe[r,c] pipe=P stage=G stages=<label>:<cycles>+...`.
/// This makes an exported trace self-describing — the analysis layer
/// (obs/analysis/trace_analysis.h) re-derives stage attribution from
/// the names alone, with no dependency on the mapper.
void enrich_thread_names(const MapperOptions& opt,
                         const DegradedLayout& layout,
                         const PipelinePlan& plan, u32 block_size) {
  if (!opt.tracer) return;
  const u32 pl = plan.length();
  for (const RowSlot& slot : layout.slots) {
    for (u32 p = 0; p < slot.n_pipes; ++p) {
      for (u32 g = 0; g < pl; ++g) {
        const u32 c = p * pl + g;
        // Aggregate the group's sub-stages by family, keeping order.
        std::vector<std::pair<const char*, f64>> shares;
        for (const core::SubStage& st : plan.groups[g].stages) {
          const char* label = stage_label(st.kind);
          const f64 cycles =
              static_cast<f64>(opt.cost.substage_cycles(st, block_size));
          if (!shares.empty() && shares.back().first == label) {
            shares.back().second += cycles;
          } else {
            shares.emplace_back(label, cycles);
          }
        }
        std::string name = "pe[" + std::to_string(slot.row) + "," +
                           std::to_string(c) + "] pipe=" +
                           std::to_string(p) + " stage=" +
                           std::to_string(g) + " stages=";
        for (std::size_t i = 0; i < shares.size(); ++i) {
          if (i > 0) name += '+';
          char cyc[32];
          std::snprintf(cyc, sizeof(cyc), "%.1f", shares[i].second);
          name += shares[i].first;
          name += ':';
          name += cyc;
        }
        opt.tracer->set_thread_name(obs::kFabricPid,
                                    slot.row * opt.cols + c + 1,
                                    std::move(name));
      }
    }
  }
}

/// Export the analytic cost-model terms as gauges so a metrics file is
/// self-sufficient for measured-vs-predicted validation (the gauge
/// names live in obs/analysis/model_check.h). The prediction targets
/// the narrowest surviving row — the one that governs the makespan.
void export_predictions(obs::MetricsRegistry* reg, const MapperOptions& opt,
                        const DegradedLayout& layout,
                        const PipelinePlan& plan, u64 n_blocks,
                        u32 block_extent, u32 block_bytes) {
  if (!reg) return;
  u32 min_pipes = layout.slots.front().n_pipes;
  for (const RowSlot& slot : layout.slots) {
    min_pipes = std::min(min_pipes, slot.n_pipes);
  }
  const PerfModel model(opt.wse);
  const PerfPrediction p = model.predict_degraded(
      plan, layout.stride, min_pipes, n_blocks, block_extent, block_bytes);

  namespace oa = obs::analysis;
  reg->gauge(oa::kGaugeMeshRows).set(static_cast<f64>(opt.rows));
  reg->gauge(oa::kGaugeMeshCols).set(static_cast<f64>(opt.cols));
  reg->gauge(oa::kGaugePipelineLength).set(static_cast<f64>(plan.length()));
  reg->gauge(oa::kGaugePipelinesPerRow).set(static_cast<f64>(min_pipes));
  reg->gauge(oa::kGaugePredictedC1).set(static_cast<f64>(p.c1));
  reg->gauge(oa::kGaugePredictedC2).set(static_cast<f64>(p.c2));
  reg->gauge(oa::kGaugePredictedRelayPerRound)
      .set(static_cast<f64>(p.relay_cycles_per_round));
  reg->gauge(oa::kGaugePredictedRecvPerRound)
      .set(static_cast<f64>(p.recv_cycles_per_round));
  reg->gauge(oa::kGaugePredictedComputeTask)
      .set(static_cast<f64>(opt.wse.task_overhead_cycles +
                            plan.bottleneck_cycles()));
  reg->gauge(oa::kGaugePredictedRoundCycles)
      .set(static_cast<f64>(p.round_cycles));
  reg->gauge(oa::kGaugePredictedTotalCycles)
      .set(static_cast<f64>(p.total_cycles));
  reg->gauge(oa::kGaugePredictedRounds).set(static_cast<f64>(p.rounds));
}

/// The parallel simulator configured for this run's mesh: row bands
/// share the full fault plan (global coordinates), observability sinks,
/// and optionally the caller's worker pool.
wse::WaferSimOptions sim_options(const MapperOptions& opt, u32 rows_sim) {
  wse::WaferSimOptions sopt;
  sopt.wse = opt.wse;
  sopt.wse.rows = rows_sim;
  sopt.wse.cols = opt.cols;
  sopt.sim_threads = opt.sim_threads;
  sopt.rows_per_group = opt.sim_rows_per_group;
  sopt.fault_plan = opt.fault_plan;
  sopt.tracer = opt.tracer;
  sopt.metrics = opt.metrics;
  sopt.pool = opt.sim_pool;
  return sopt;
}

/// Fold a finished run into the caller's long-lived registry.
void record_mapper_metrics(obs::MetricsRegistry* reg,
                           const WaferRunResult& result) {
  if (!reg) return;
  reg->counter(kMetricMapperRuns).add(1);
  reg->counter(kMetricMapperBlocks).add(result.total_blocks);
  reg->counter(kMetricMapperPaddedBlocks).add(result.padded_blocks);
  reg->counter(kMetricMapperRowsFailed).add(result.rows_failed);
  reg->counter(kMetricMapperPipelinesLost).add(result.pipelines_lost);
  reg->gauge(kMetricMapperMakespan).set(static_cast<f64>(result.makespan));
  reg->gauge(kMetricMapperThroughput).set(result.throughput_gbps);
}

}  // namespace

void declare_mapper_metrics(obs::MetricsRegistry& reg) {
  reg.counter(kMetricMapperRuns);
  reg.counter(kMetricMapperBlocks);
  reg.counter(kMetricMapperPaddedBlocks);
  reg.counter(kMetricMapperRowsFailed);
  reg.counter(kMetricMapperPipelinesLost);
  reg.gauge(kMetricMapperMakespan);
  reg.gauge(kMetricMapperThroughput);
  namespace oa = obs::analysis;
  reg.gauge(oa::kGaugeMeshRows);
  reg.gauge(oa::kGaugeMeshCols);
  reg.gauge(oa::kGaugePipelineLength);
  reg.gauge(oa::kGaugePipelinesPerRow);
  reg.gauge(oa::kGaugePredictedC1);
  reg.gauge(oa::kGaugePredictedC2);
  reg.gauge(oa::kGaugePredictedRelayPerRound);
  reg.gauge(oa::kGaugePredictedRecvPerRound);
  reg.gauge(oa::kGaugePredictedComputeTask);
  reg.gauge(oa::kGaugePredictedRoundCycles);
  reg.gauge(oa::kGaugePredictedTotalCycles);
  reg.gauge(oa::kGaugePredictedRounds);
}

WaferMapper::WaferMapper(MapperOptions options) : options_(options) {
  options_.codec.validate();
  CERESZ_CHECK(!options_.codec.constant_block_shortcut,
               "WaferMapper: the constant-block extension is host-codec "
               "only; the wafer mapping implements the paper's format");
  CERESZ_CHECK(options_.rows >= 1 && options_.cols >= 1,
               "WaferMapper: mesh must be at least 1x1");
  CERESZ_CHECK(options_.pipeline_length >= 1 &&
                   options_.pipeline_length <= options_.cols,
               "WaferMapper: pipeline length must fit within the row");
  CERESZ_CHECK(options_.max_exact_rows >= 1,
               "WaferMapper: max_exact_rows must be at least 1");
}

WaferRunResult WaferMapper::compress(std::span<const f32> data,
                                     core::ErrorBound bound) const {
  const u32 L = options_.codec.block_size;
  CERESZ_CHECK(!data.empty(), "WaferMapper::compress: empty input");

  WaferRunResult result;
  obs::SpanGuard run_span(options_.tracer, "mapper.compress", "mapper",
                          "elements", static_cast<i64>(data.size()));

  // 1. Profile + schedule.
  {
    obs::SpanGuard span(options_.tracer, "mapper.profile", "mapper");
    StageProfiler profiler(options_.codec, options_.cost,
                           options_.sample_fraction);
    result.profile = profiler.profile(data, bound);
  }
  result.eps_abs = result.profile.eps_abs;
  {
    obs::SpanGuard span(options_.tracer, "mapper.schedule", "mapper");
    GreedyScheduler scheduler(options_.cost, L);
    const auto substages =
        core::compression_substages(result.profile.est_fixed_length);
    if (options_.plan_for_sram) {
      result.plan = plan_with_sram(scheduler, substages, L,
                                   PipeDirection::kCompress,
                                   options_.wse.sram_bytes);
      CERESZ_CHECK(result.plan.length() <= options_.cols,
                   "WaferMapper: SRAM-driven pipeline longer than the row");
    } else {
      result.plan = scheduler.distribute(substages, options_.pipeline_length);
    }
  }

  // 2. Row assignment.
  const u64 assign_start =
      options_.tracer ? options_.tracer->now_rel_ns() : 0;
  const u64 n_blocks = (data.size() + L - 1) / L;
  result.total_blocks = n_blocks;
  const u32 n_pipes = options_.cols / result.plan.length();
  result.pipelines_per_row = n_pipes;
  result.extrapolated = options_.rows > options_.max_exact_rows;
  result.rows_simulated =
      result.extrapolated ? options_.max_exact_rows : options_.rows;
  const DegradedLayout layout = plan_layout(options_, result.rows_simulated,
                                            result.plan.length(),
                                            result.extrapolated);
  result.degraded = layout.degraded;
  result.rows_failed = layout.rows_failed;
  result.pipelines_lost = layout.pipelines_lost;

  auto make_block = [&](u64 b) {
    RowBlock rb;
    rb.extent = L;
    rb.tag = b;
    rb.work = std::make_shared<BlockWork>();
    rb.work->input.assign(L, 0.0f);
    const u64 begin = b * L;
    const u64 count = std::min<u64>(L, data.size() - begin);
    std::copy_n(data.data() + begin, count, rb.work->input.begin());
    return rb;
  };
  RowBlock pad_template;
  pad_template.extent = L;
  pad_template.work = std::make_shared<BlockWork>();
  pad_template.work->input.assign(L, 0.0f);

  RowAssignment assignment =
      assign_blocks(n_blocks, layout, make_block, pad_template);
  result.padded_blocks = assignment.padded_blocks;
  if (options_.tracer) {
    obs::TraceEvent ev;
    ev.name = "mapper.assign";
    ev.cat = "mapper";
    ev.ts_ns = assign_start;
    ev.dur_ns = options_.tracer->now_rel_ns() - assign_start;
    ev.arg1_name = "blocks";
    ev.arg1 = static_cast<i64>(n_blocks);
    options_.tracer->record(ev);
  }

  // 3. Build and run the parallel simulator (one band per row by
  // default; bands execute concurrently on sim_threads / sim_pool).
  wse::WaferSimulator sim(sim_options(options_, result.rows_simulated));
  const wse::WseConfig& wcfg = sim.options().wse;
  auto executor = std::make_shared<const SubStageExecutor>(
      options_.codec, options_.cost, result.eps_abs);
  for (std::size_t s = 0; s < layout.slots.size(); ++s) {
    build_row_program(sim.fabric_for_row(layout.slots[s].row),
                      layout.slots[s].row, result.plan,
                      PipeDirection::kCompress, executor,
                      std::move(assignment.per_row[s]),
                      options_.ingress_cycles_per_wavelet,
                      layout.slots[s].usable_cols);
  }
  {
    obs::SpanGuard span(options_.tracer, "mapper.fabric_run", "mapper");
    result.run_stats = sim.run();
  }
  enrich_thread_names(options_, layout, result.plan, L);
  export_predictions(options_.metrics, options_, layout, result.plan,
                     n_blocks, L, L * sizeof(f32));
  result.makespan = result.run_stats.makespan;
  result.seconds = wcfg.seconds(result.makespan);
  result.throughput_gbps =
      static_cast<f64>(data.size() * sizeof(f32)) / result.seconds / 1.0e9;

  result.row0_stats.reserve(options_.cols);
  for (u32 c = 0; c < options_.cols; ++c) {
    result.row0_stats.push_back(sim.stats(0, c));
  }

  // 4. Assemble the stream (exact mode only: every block was simulated).
  if (options_.collect_output && !result.extrapolated) {
    obs::SpanGuard span(options_.tracer, "mapper.assemble", "mapper");
    std::vector<std::span<const u8>> records(n_blocks);
    for (const auto& rec : sim.results()) {
      if (rec.tag >= kPadTagBase) continue;
      records[rec.tag] = rec.bytes;
    }
    auto& out = result.stream;
    out.reserve(24 + n_blocks * 8);
    const char magic[4] = {'C', 'S', 'Z', '1'};
    out.insert(out.end(), magic, magic + 4);
    out.push_back(static_cast<u8>(options_.codec.header_bytes));
    out.push_back(options_.codec.zero_block_shortcut ? u8{1} : u8{0});
    append_u16(out, static_cast<u16>(L));
    append_u64(out, data.size());
    u64 eps_bits;
    std::memcpy(&eps_bits, &result.eps_abs, sizeof(eps_bits));
    append_u64(out, eps_bits);
    for (u64 b = 0; b < n_blocks; ++b) {
      CERESZ_CHECK(!records[b].empty(),
                   "WaferMapper: block never emerged from the wafer");
      out.insert(out.end(), records[b].begin(), records[b].end());
    }
  }
  record_mapper_metrics(options_.metrics, result);
  return result;
}

WaferRunResult WaferMapper::decompress(std::span<const u8> stream) const {
  const u32 L = options_.codec.block_size;
  core::StreamCodec codec(options_.codec);
  // Parse the container header via the codec (validates magic/config).
  // We only need element count and eps; a cheap way that reuses the
  // validation is to index the records ourselves after checking the size.
  CERESZ_CHECK(stream.size() >= core::StreamCodec::header_size(),
               "WaferMapper::decompress: truncated stream");
  CERESZ_CHECK(std::memcmp(stream.data(), "CSZ1", 4) == 0,
               "WaferMapper::decompress: bad magic");
  u64 element_count = 0;
  for (int b = 0; b < 8; ++b) {
    element_count |= static_cast<u64>(stream[8 + b]) << (8 * b);
  }
  u64 eps_bits = 0;
  for (int b = 0; b < 8; ++b) {
    eps_bits |= static_cast<u64>(stream[16 + b]) << (8 * b);
  }
  f64 eps_abs;
  std::memcpy(&eps_abs, &eps_bits, sizeof(eps_abs));
  CERESZ_CHECK(eps_abs > 0.0, "WaferMapper::decompress: corrupt bound");

  WaferRunResult result;
  obs::SpanGuard run_span(options_.tracer, "mapper.decompress", "mapper",
                          "bytes", static_cast<i64>(stream.size()));
  result.eps_abs = eps_abs;
  const u64 n_blocks = (element_count + L - 1) / L;
  // Corrupt-header guard: every record is at least header_bytes wide.
  CERESZ_CHECK(n_blocks <= (stream.size() - core::StreamCodec::header_size()) /
                               options_.codec.header_bytes,
               "WaferMapper::decompress: corrupt header (element count "
               "exceeds what the stream could hold)");
  result.total_blocks = n_blocks;

  // Index the block records and find the stream's maximum fixed length
  // (known up front on a real deployment — it is what the decompression
  // pipeline is scheduled for).
  const core::BlockCodec& bc = codec.block_codec();
  std::vector<u64> offsets(n_blocks + 1);
  u32 max_fl = 1;
  {
    obs::SpanGuard span(options_.tracer, "mapper.profile", "mapper");
    u64 pos = core::StreamCodec::header_size();
    for (u64 b = 0; b < n_blocks; ++b) {
      offsets[b] = pos;
      const std::size_t rec = bc.record_size(stream.subspan(pos));
      // Header low byte is the fixed length (<= 32).
      max_fl = std::max(max_fl, static_cast<u32>(stream[pos]));
      pos += rec;
      CERESZ_CHECK(pos <= stream.size(),
                   "WaferMapper::decompress: truncated stream");
    }
    offsets[n_blocks] = pos;
  }

  result.profile.eps_abs = eps_abs;
  result.profile.est_fixed_length = max_fl;
  result.profile.decompress_cycles =
      options_.cost.decompress_block_cycles(L, max_fl, false);

  {
    obs::SpanGuard span(options_.tracer, "mapper.schedule", "mapper");
    GreedyScheduler scheduler(options_.cost, L);
    const auto substages = core::decompression_substages(max_fl);
    if (options_.plan_for_sram) {
      result.plan = plan_with_sram(scheduler, substages, L,
                                   PipeDirection::kDecompress,
                                   options_.wse.sram_bytes);
      CERESZ_CHECK(result.plan.length() <= options_.cols,
                   "WaferMapper: SRAM-driven pipeline longer than the row");
    } else {
      result.plan = scheduler.distribute(substages, options_.pipeline_length);
    }
  }

  const u64 assign_start =
      options_.tracer ? options_.tracer->now_rel_ns() : 0;
  const u32 n_pipes = options_.cols / result.plan.length();
  result.pipelines_per_row = n_pipes;
  result.extrapolated = options_.rows > options_.max_exact_rows;
  result.rows_simulated =
      result.extrapolated ? options_.max_exact_rows : options_.rows;
  const DegradedLayout layout = plan_layout(options_, result.rows_simulated,
                                            result.plan.length(),
                                            result.extrapolated);
  result.degraded = layout.degraded;
  result.rows_failed = layout.rows_failed;
  result.pipelines_lost = layout.pipelines_lost;

  auto make_block = [&](u64 b) {
    RowBlock rb;
    rb.tag = b;
    rb.work = std::make_shared<BlockWork>();
    rb.work->record.assign(stream.begin() + offsets[b],
                           stream.begin() + offsets[b + 1]);
    rb.extent = std::max<u32>(
        1, static_cast<u32>((rb.work->record.size() + 3) / 4));
    return rb;
  };
  RowBlock pad_template;
  pad_template.work = std::make_shared<BlockWork>();
  // A zero-block record: header of fl = 0.
  pad_template.work->record.assign(options_.codec.header_bytes, 0);
  pad_template.extent = 1;

  RowAssignment assignment =
      assign_blocks(n_blocks, layout, make_block, pad_template);
  result.padded_blocks = assignment.padded_blocks;
  if (options_.tracer) {
    obs::TraceEvent ev;
    ev.name = "mapper.assign";
    ev.cat = "mapper";
    ev.ts_ns = assign_start;
    ev.dur_ns = options_.tracer->now_rel_ns() - assign_start;
    ev.arg1_name = "blocks";
    ev.arg1 = static_cast<i64>(n_blocks);
    options_.tracer->record(ev);
  }

  wse::WaferSimulator sim(sim_options(options_, result.rows_simulated));
  const wse::WseConfig& wcfg = sim.options().wse;
  auto executor = std::make_shared<const SubStageExecutor>(
      options_.codec, options_.cost, eps_abs);
  for (std::size_t s = 0; s < layout.slots.size(); ++s) {
    build_row_program(sim.fabric_for_row(layout.slots[s].row),
                      layout.slots[s].row, result.plan,
                      PipeDirection::kDecompress, executor,
                      std::move(assignment.per_row[s]),
                      options_.ingress_cycles_per_wavelet,
                      layout.slots[s].usable_cols);
  }
  {
    obs::SpanGuard span(options_.tracer, "mapper.fabric_run", "mapper");
    result.run_stats = sim.run();
  }
  enrich_thread_names(options_, layout, result.plan, L);
  {
    // Record extents vary per block; predict with the mean wavelet count.
    const u64 payload = offsets[n_blocks] - offsets[0];
    const u32 avg_extent = std::max<u32>(
        1, static_cast<u32>((payload / n_blocks + 3) / 4));
    export_predictions(options_.metrics, options_, layout, result.plan,
                       n_blocks, avg_extent, L * sizeof(f32));
  }
  result.makespan = result.run_stats.makespan;
  result.seconds = wcfg.seconds(result.makespan);
  // Decompression throughput is measured against the original data size
  // (Section 5.1.4: Size_ori / T).
  result.throughput_gbps =
      static_cast<f64>(element_count * sizeof(f32)) / result.seconds / 1.0e9;

  result.row0_stats.reserve(options_.cols);
  for (u32 c = 0; c < options_.cols; ++c) {
    result.row0_stats.push_back(sim.stats(0, c));
  }

  if (options_.collect_output && !result.extrapolated) {
    obs::SpanGuard span(options_.tracer, "mapper.assemble", "mapper");
    result.output.assign(n_blocks * L, 0.0f);
    for (const auto& rec : sim.results()) {
      if (rec.tag >= kPadTagBase) continue;
      CERESZ_CHECK(rec.bytes.size() == L * sizeof(f32),
                   "WaferMapper: bad reconstructed block size");
      std::memcpy(result.output.data() + rec.tag * L, rec.bytes.data(),
                  rec.bytes.size());
    }
    result.output.resize(element_count);
  }
  record_mapper_metrics(options_.metrics, result);
  return result;
}

}  // namespace ceresz::mapping
