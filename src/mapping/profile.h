// Stage profiling: estimate the per-block cycle budget of a dataset before
// mapping it onto the wafer.
//
// The bit-shuffle cost is data-dependent (one sub-stage per effective bit),
// so — following Section 4.2 — the profiler samples 5% of the data points,
// quantizes and predicts them, and uses the sampled maximum residual to
// approximate the dataset's fixed length. From that it derives the total
// per-block cycle count C that Algorithm 1 divides across PEs.
#pragma once

#include <span>

#include "common/types.h"
#include "core/config.h"
#include "core/costmodel.h"
#include "core/stage.h"

namespace ceresz::mapping {

/// Profile of one field at one error bound.
struct DataProfile {
  f64 eps_abs = 0.0;
  u32 est_fixed_length = 0;   ///< sampled estimate of the encoding length
  f64 zero_fraction = 0.0;    ///< sampled fraction of all-zero blocks
  Cycles compress_cycles = 0;   ///< modeled C for compression
  Cycles decompress_cycles = 0; ///< modeled C for decompression
};

class StageProfiler {
 public:
  StageProfiler(core::CodecConfig codec, core::PeCostModel cost,
                f64 sample_fraction = 0.05)
      : codec_(codec), cost_(cost), sample_fraction_(sample_fraction) {}

  /// Sample `data` and estimate the pipeline cycle budget under `bound`.
  DataProfile profile(std::span<const f32> data, core::ErrorBound bound,
                      u64 seed = 1) const;

 private:
  core::CodecConfig codec_;
  core::PeCostModel cost_;
  f64 sample_fraction_;
};

}  // namespace ceresz::mapping
