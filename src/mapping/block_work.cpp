#include "mapping/block_work.h"

#include <algorithm>

#include "common/error.h"
#include "core/flenc.h"
#include "core/lorenzo.h"
#include "core/prequant.h"

namespace ceresz::mapping {

SubStageExecutor::SubStageExecutor(core::CodecConfig codec,
                                   core::PeCostModel cost, f64 eps)
    : codec_(codec), cost_(cost), eps_(eps) {
  codec_.validate();
  CERESZ_CHECK(eps_ > 0.0, "SubStageExecutor: eps must be positive");
}

Cycles SubStageExecutor::apply(BlockWork& work,
                               const core::SubStage& stage) const {
  using core::SubStageKind;
  const u32 L = codec_.block_size;
  const Cycles full = cost_.substage_cycles(stage, L);

  switch (stage.kind) {
    case SubStageKind::kPrequantMul:
      CERESZ_CHECK(work.input.size() == L, "apply: bad input block");
      work.scratch.resize(L);
      core::prequant_multiply(work.input, work.scratch, 1.0 / (2.0 * eps_));
      return full;

    case SubStageKind::kPrequantAdd:
      work.quant.resize(L);
      core::prequant_add_floor(work.scratch, work.quant);
      return full;

    case SubStageKind::kLorenzo:
      core::lorenzo_forward(work.quant, work.quant);
      return full;

    case SubStageKind::kSign:
      work.absv.resize(L);
      work.signs.resize(L / 8);
      core::split_sign(work.quant, work.absv, work.signs);
      return full;

    case SubStageKind::kMax:
      work.maxval = core::block_max(work.absv);
      return full;

    case SubStageKind::kGetLength: {
      work.fl = core::effective_bits(work.maxval);
      work.zero = codec_.zero_block_shortcut && work.maxval == 0;
      if (!work.zero) work.fl = std::max(work.fl, 1u);
      work.length_known = true;
      if (work.zero) {
        work.planes.clear();
        return cost_.zero_block_tail;
      }
      work.planes.assign(static_cast<std::size_t>(work.fl) * (L / 8), 0);
      return full;
    }

    case SubStageKind::kShuffleBit: {
      CERESZ_CHECK(work.length_known, "apply: shuffle before GetLength");
      if (work.zero || stage.bit_index >= work.fl) return kSkipCycles;
      // A tail stage covers every remaining plane: the plan was built from
      // the sampled fixed-length estimate, and blocks whose true length
      // exceeds it overflow onto the last shuffle PE.
      const u32 last_bit = stage.tail ? work.fl : stage.bit_index + 1;
      const std::size_t plane_bytes = L / 8;
      for (u32 k = stage.bit_index; k < last_bit; ++k) {
        core::bit_shuffle_plane(
            work.absv, k,
            std::span<u8>(work.planes.data() + k * plane_bytes, plane_bytes));
      }
      return full * (last_bit - stage.bit_index);
    }

    case SubStageKind::kUnshuffleBit: {
      // First unshuffle sub-stage parses the record header.
      if (!work.length_known) {
        CERESZ_CHECK(work.record.size() >= codec_.header_bytes,
                     "apply: truncated record");
        u32 fl = 0;
        for (u32 b = 0; b < codec_.header_bytes; ++b) {
          fl |= static_cast<u32>(work.record[b]) << (8 * b);
        }
        CERESZ_CHECK(fl <= 32, "apply: corrupt record header");
        work.fl = fl;
        work.zero = fl == 0;
        work.length_known = true;
        work.absv.assign(L, 0);
      }
      if (work.zero || stage.bit_index >= work.fl) return kSkipCycles;
      const u32 last_bit = stage.tail ? work.fl : stage.bit_index + 1;
      const std::size_t plane_bytes = L / 8;
      for (u32 k = stage.bit_index; k < last_bit; ++k) {
        const std::size_t plane_at =
            codec_.header_bytes + plane_bytes +
            static_cast<std::size_t>(k) * plane_bytes;
        CERESZ_CHECK(work.record.size() >= plane_at + plane_bytes,
                     "apply: truncated record payload");
        for (std::size_t j = 0; j < L; ++j) {
          const u32 bit = (work.record[plane_at + j / 8] >> (j % 8)) & 1u;
          work.absv[j] |= bit << k;
        }
      }
      return full * (last_bit - stage.bit_index);
    }

    case SubStageKind::kPrefixSum: {
      work.quant.resize(L);
      if (work.zero) {
        std::fill(work.quant.begin(), work.quant.end(), 0);
        return kSkipCycles;
      }
      const std::size_t plane_bytes = L / 8;
      std::span<const u8> signs(work.record.data() + codec_.header_bytes,
                                plane_bytes);
      core::apply_sign(work.absv, signs, work.quant);
      core::lorenzo_inverse(work.quant, work.quant);
      return full;
    }

    case SubStageKind::kDequantMul:
      work.output.resize(L);
      core::dequant(work.quant, work.output, 2.0 * eps_);
      return work.zero ? cost_.zero_block_tail : full;
  }
  CERESZ_FAIL("apply: unknown sub-stage kind");
}

std::size_t SubStageExecutor::assemble_record(const BlockWork& work,
                                              std::vector<u8>& out) const {
  CERESZ_CHECK(work.length_known, "assemble_record: pipeline incomplete");
  const std::size_t before = out.size();
  const u32 fl = work.zero ? 0 : work.fl;
  for (u32 b = 0; b < codec_.header_bytes; ++b) {
    out.push_back(static_cast<u8>((fl >> (8 * b)) & 0xff));
  }
  if (!work.zero) {
    out.insert(out.end(), work.signs.begin(), work.signs.end());
    out.insert(out.end(), work.planes.begin(), work.planes.end());
  }
  return out.size() - before;
}

}  // namespace ceresz::mapping
