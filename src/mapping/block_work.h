// The in-flight state of one block as it moves through a compression or
// decompression pipeline, plus the sub-stage executor that each PE's stage
// group applies to it.
//
// On hardware each PE holds only the buffers its own sub-stages need; here
// one BlockWork travels with the block (attached to the fabric message) so
// the simulation stays functional end-to-end — the bytes emitted by the
// last pipeline PE are bit-identical to the host StreamCodec's output,
// which the integration tests assert.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "core/config.h"
#include "core/costmodel.h"
#include "core/stage.h"

namespace ceresz::mapping {

struct BlockWork {
  // --- compression direction ---
  std::vector<f32> input;    ///< raw block
  std::vector<f64> scratch;  ///< after Multiplication
  std::vector<i32> quant;    ///< after Addition / Lorenzo
  std::vector<u32> absv;     ///< after Sign
  std::vector<u8> signs;
  u32 maxval = 0;
  u32 fl = 0;
  bool length_known = false;
  bool zero = false;
  std::vector<u8> planes;  ///< bit-shuffled payload

  // --- decompression direction ---
  std::vector<u8> record;    ///< one compressed block record
  std::vector<f32> output;   ///< reconstructed floats
};

/// Executes individual sub-stages on a BlockWork and reports the cycles
/// they actually cost (data-dependent: stages past a zero block's
/// GetLength, or shuffle planes beyond the block's true fixed length, are
/// skipped at a nominal dispatch cost).
class SubStageExecutor {
 public:
  SubStageExecutor(core::CodecConfig codec, core::PeCostModel cost, f64 eps);

  /// Apply one sub-stage; returns the cycles consumed.
  Cycles apply(BlockWork& work, const core::SubStage& stage) const;

  /// Assemble the final compressed record (header + signs + planes) into
  /// `out`; layout identical to core::BlockCodec. Returns record size.
  std::size_t assemble_record(const BlockWork& work,
                              std::vector<u8>& out) const;

  /// Cycles a sub-stage costs when skipped (zero block / absent plane).
  static constexpr Cycles kSkipCycles = 20;

  f64 eps() const { return eps_; }
  const core::CodecConfig& codec() const { return codec_; }

 private:
  core::CodecConfig codec_;
  core::PeCostModel cost_;
  f64 eps_;
};

}  // namespace ceresz::mapping
