#include "mapping/scheduler.h"

#include <algorithm>

#include "common/error.h"

namespace ceresz::mapping {

Cycles PipelinePlan::bottleneck_cycles() const {
  Cycles worst = 0;
  for (const auto& g : groups) worst = std::max(worst, g.cycles);
  return worst;
}

Cycles PipelinePlan::total_cycles() const {
  Cycles total = 0;
  for (const auto& g : groups) total += g.cycles;
  return total;
}

PipelinePlan GreedyScheduler::distribute(
    const std::vector<core::SubStage>& stages, u32 m) const {
  CERESZ_CHECK(!stages.empty(), "GreedyScheduler: no sub-stages to schedule");
  CERESZ_CHECK(m >= 1, "GreedyScheduler: need at least one PE");
  m = std::min<u32>(m, static_cast<u32>(stages.size()));

  Cycles total = 0;
  std::vector<Cycles> costs;
  costs.reserve(stages.size());
  for (const auto& s : stages) {
    costs.push_back(cost_.substage_cycles(s, block_size_));
    total += costs.back();
  }
  const f64 target = static_cast<f64>(total) / static_cast<f64>(m);

  PipelinePlan plan;
  plan.groups.resize(m);
  std::size_t next = 0;
  for (u32 g = 0; g + 1 < m; ++g) {
    auto& group = plan.groups[g];
    // Keep at least one stage per group, and leave enough stages so the
    // remaining groups are non-empty.
    const std::size_t must_leave = m - g - 1;
    while (next < stages.size() - must_leave &&
           (group.stages.empty() ||
            static_cast<f64>(group.cycles) < target)) {
      group.stages.push_back(stages[next]);
      group.cycles += costs[next];
      ++next;
    }
  }
  // Last group takes everything left (line 5 of Algorithm 1).
  auto& last = plan.groups[m - 1];
  while (next < stages.size()) {
    last.stages.push_back(stages[next]);
    last.cycles += costs[next];
    ++next;
  }
  CERESZ_CHECK(!last.stages.empty(), "GreedyScheduler: empty final group");
  return plan;
}

u32 GreedyScheduler::max_feasible_length(
    const std::vector<core::SubStage>& stages) const {
  Cycles total = 0;
  Cycles t1 = 0;
  for (const auto& s : stages) {
    const Cycles c = cost_.substage_cycles(s, block_size_);
    total += c;
    t1 = std::max(t1, c);
  }
  CERESZ_CHECK(t1 > 0, "max_feasible_length: zero-cost stages");
  return static_cast<u32>(total / t1);
}

}  // namespace ceresz::mapping
