#include "mapping/csl_codegen.h"

#include <sstream>

#include "common/error.h"
#include "mapping/pipeline_program.h"

namespace ceresz::mapping {

namespace {

// Emit the CSL statements implementing one sub-stage on a block buffer.
// Buffers: input[N] (f32), scratch[N] (f32 on PE — the f64 host scratch is
// a simulation nicety), quant[N] (i32), absv[N] (u32), signs[N/8] (u8),
// planes[fl][N/8] (u8).
std::string stage_body(const core::SubStage& stage, u32 n) {
  std::ostringstream o;
  using core::SubStageKind;
  switch (stage.kind) {
    case SubStageKind::kPrequantMul:
      o << "    // Multiplication: scratch = input * (1 / 2eps)\n"
        << "    @fmuls(scratch_dsd, input_dsd, recip_two_eps);\n";
      break;
    case SubStageKind::kPrequantAdd:
      o << "    // Addition: quant = floor(scratch + 0.5)\n"
        << "    @fadds(scratch_dsd, scratch_dsd, 0.5);\n"
        << "    @f2si(quant_dsd, scratch_dsd);  // floor via convert\n";
      break;
    case SubStageKind::kLorenzo:
      o << "    // 1-D Lorenzo: quant[i] -= quant[i-1] (reverse scan)\n"
        << "    var i: i16 = " << n - 1 << ";\n"
        << "    while (i >= 1) : (i -= 1) {\n"
        << "        quant[i] = quant[i] - quant[i - 1];\n"
        << "    }\n";
      break;
    case SubStageKind::kSign:
      o << "    // Sign: pack sign bits, take absolute values\n"
        << "    for (@range(i16, " << n << ")) |j| {\n"
        << "        const neg = quant[j] < 0;\n"
        << "        signs[j >> 3] |= @as(u8, neg) << @as(u8, j & 7);\n"
        << "        absv[j] = @as(u32, if (neg) -quant[j] else quant[j]);\n"
        << "    }\n";
      break;
    case SubStageKind::kMax:
      o << "    // Max: maximum absolute value of the block\n"
        << "    maxval = 0;\n"
        << "    for (@range(i16, " << n << ")) |j| {\n"
        << "        if (absv[j] > maxval) { maxval = absv[j]; }\n"
        << "    }\n";
      break;
    case SubStageKind::kGetLength:
      o << "    // GetLength: effective bits of maxval (fixed length)\n"
        << "    fl = 32 - @clz(maxval);\n"
        << "    if (maxval == 0) { fl = 0; }  // zero block shortcut\n";
      break;
    case SubStageKind::kShuffleBit:
      o << "    // 1-bit Shuffle, plane " << stage.bit_index
        << (stage.tail ? " and all remaining planes" : "") << "\n"
        << "    var k: u16 = " << stage.bit_index << ";\n"
        << "    while (k < "
        << (stage.tail ? std::string("fl")
                       : std::to_string(stage.bit_index + 1))
        << ") : (k += 1) {\n"
        << "        for (@range(i16, " << n << ")) |j| {\n"
        << "            const bit = @as(u8, (absv[j] >> k) & 1);\n"
        << "            planes[k][j >> 3] |= bit << @as(u8, j & 7);\n"
        << "        }\n"
        << "    }\n";
      break;
    case SubStageKind::kUnshuffleBit:
      o << "    // 1-bit Unshuffle, plane " << stage.bit_index
        << (stage.tail ? " and all remaining planes" : "") << "\n"
        << "    var k: u16 = " << stage.bit_index << ";\n"
        << "    while (k < "
        << (stage.tail ? std::string("fl")
                       : std::to_string(stage.bit_index + 1))
        << ") : (k += 1) {\n"
        << "        for (@range(i16, " << n << ")) |j| {\n"
        << "            const bit = @as(u32, (planes[k][j >> 3] >> "
           "@as(u8, j & 7)) & 1);\n"
        << "            absv[j] |= bit << k;\n"
        << "        }\n"
        << "    }\n";
      break;
    case SubStageKind::kPrefixSum:
      o << "    // Reverse Lorenzo: reapply signs, then prefix sum\n"
        << "    for (@range(i16, " << n << ")) |j| {\n"
        << "        const neg = (signs[j >> 3] >> @as(u8, j & 7)) & 1;\n"
        << "        quant[j] = if (neg == 1) -@as(i32, absv[j])\n"
        << "                   else @as(i32, absv[j]);\n"
        << "    }\n"
        << "    var i: i16 = 1;\n"
        << "    while (i < " << n << ") : (i += 1) {\n"
        << "        quant[i] = quant[i] + quant[i - 1];\n"
        << "    }\n";
      break;
    case SubStageKind::kDequantMul:
      o << "    // Dequantize: output = quant * 2eps\n"
        << "    @f32_from_i32(scratch_dsd, quant_dsd);\n"
        << "    @fmuls(output_dsd, scratch_dsd, two_eps);\n";
      break;
  }
  return o.str();
}

}  // namespace

CslProgram CslCodegen::generate(const PipelinePlan& plan,
                                PipeDirection direction) const {
  CERESZ_CHECK(!plan.groups.empty(), "CslCodegen: empty plan");
  CslProgram p;
  p.layout = generate_layout(plan, direction);
  p.head_pe = generate_head(plan, direction);
  p.stage_pe = generate_stage(plan, direction);
  p.readme = generate_readme(plan, direction);
  return p;
}

std::string CslCodegen::generate_layout(const PipelinePlan& plan,
                                        PipeDirection direction) const {
  std::ostringstream o;
  const u32 pl = plan.length();
  o << "// layout.csl — CereSZ "
    << (direction == PipeDirection::kCompress ? "compression" : "decompression")
    << " mapping, generated by ceresz::CslCodegen\n"
    << "// mesh " << wse_.rows << " x " << wse_.cols << ", pipeline length "
    << pl << ", block size " << block_size_ << "\n\n"
    << "param memcpy_params: comptime_struct;\n\n"
    << "// Colors: raw-block relay alternates between two colors from head\n"
    << "// to head (Fig. 9); intra-pipeline stages alternate another pair.\n"
    << "const RAW_A: color   = @get_color(" << int{colors::kRaw[0]} << ");\n"
    << "const RAW_B: color   = @get_color(" << int{colors::kRaw[1]} << ");\n"
    << "const INTER_A: color = @get_color(" << int{colors::kInter[0]}
    << ");\n"
    << "const INTER_B: color = @get_color(" << int{colors::kInter[1]}
    << ");\n\n"
    << "layout {\n"
    << "    @set_rectangle(" << wse_.cols << ", " << wse_.rows << ");\n"
    << "    const n_pipes: u16 = " << wse_.cols / pl << ";\n"
    << "    var col: u16 = 0;\n"
    << "    while (col < " << wse_.cols << ") : (col += 1) {\n"
    << "        const head = (col % " << pl << ") == 0;\n"
    << "        const pipe = col / " << pl << ";\n"
    << "        var row: u16 = 0;\n"
    << "        while (row < " << wse_.rows << ") : (row += 1) {\n"
    << "            if (head) {\n"
    << "                @set_tile_code(col, row, \"head_pe.csl\", .{\n"
    << "                    .pipe_index = pipe, .n_pipes = n_pipes,\n"
    << "                    .raw_in = if (pipe % 2 == 0) RAW_A else RAW_B,\n"
    << "                    .raw_out = if (pipe % 2 == 0) RAW_B else RAW_A,\n"
    << "                });\n"
    << "            } else {\n"
    << "                @set_tile_code(col, row, \"stage_pe.csl\", .{\n"
    << "                    .position = col % " << pl << ",\n"
    << "                });\n"
    << "            }\n"
    << "        }\n"
    << "    }\n"
    << "}\n";
  return o.str();
}

std::string CslCodegen::generate_head(const PipelinePlan& plan,
                                      PipeDirection direction) const {
  std::ostringstream o;
  const u32 n = block_size_;
  o << "// head_pe.csl — pipeline head: Fig. 9(b) counting relay + stage "
       "group 0\n"
    << "param pipe_index: u16;\n"
    << "param n_pipes: u16;\n"
    << "param raw_in: color;\n"
    << "param raw_out: color;\n\n"
    << "const relayColor   = @get_local_task_id("
    << int{colors::kRelayTask} << ");\n"
    << "const computeColor = @get_local_task_id("
    << int{colors::kComputeTask} << ");\n\n"
    << "var input: [" << n << "]f32;\n"
    << "var scratch: [" << n << "]f32;\n"
    << "var quant: [" << n << "]i32;\n"
    << "var absv: [" << n << "]u32;\n"
    << "var signs: [" << n / 8 << "]u8;\n"
    << "var planes: [32][" << n / 8 << "]u8;\n"
    << "var output: [" << n << "]f32;\n"
    << "var maxval: u32 = 0;\n"
    << "var fl: u32 = 0;\n"
    << "param recip_two_eps: f32;\n"
    << "param two_eps: f32;\n\n"
    << "// Input DSD: one block of " << n << " wavelets from the west.\n"
    << "const din = @get_dsd(fabin_dsd, .{ .fabric_color = raw_in,\n"
    << "    .extent = " << n << ", .input_queue = @get_input_queue(1) });\n"
    << "const dout = @get_dsd(fabout_dsd, .{ .fabric_color = raw_out,\n"
    << "    .extent = " << n << ", .output_queue = @get_output_queue(0) "
       "});\n"
    << "const input_dsd = @get_dsd(mem1d_dsd,\n"
    << "    .{ .tensor_access = |i|{" << n << "} -> input[i] });\n"
    << "const scratch_dsd = @get_dsd(mem1d_dsd,\n"
    << "    .{ .tensor_access = |i|{" << n << "} -> scratch[i] });\n"
    << "const quant_dsd = @get_dsd(mem1d_dsd,\n"
    << "    .{ .tensor_access = |i|{" << n << "} -> quant[i] });\n\n"
    << "var nblocks: u32 = 0;\n"
    << "const relays_per_round: u32 = n_pipes - 1 - pipe_index;\n\n"
    << "task relay() void {\n"
    << "    if (nblocks < relays_per_round) {\n"
    << "        // Pass blocks destined for pipelines to the east.\n"
    << "        nblocks += 1;\n"
    << "        @mov32(dout, din, .{ .async = true, .activate = relayColor "
       "});\n"
    << "    } else {\n"
    << "        // Keep the next block: move it to local memory, then "
       "compute.\n"
    << "        nblocks = 0;\n"
    << "        @mov32(input_dsd, din, .{ .async = true,\n"
    << "                                  .activate = computeColor });\n"
    << "    }\n"
    << "}\n\n"
    << "task compute() void {\n"
    << "    // Resume relaying before computing (Fig. 9(b)).\n"
    << "    @activate(relayColor);\n";
  for (const auto& stage : plan.groups[0].stages) {
    o << stage_body(stage, n);
  }
  if (plan.length() == 1) {
    if (direction == PipeDirection::kCompress) {
      o << "    // Last stage PE: emit header + signs + planes off wafer.\n"
        << "    send_record(fl, &signs, &planes);\n";
    } else {
      o << "    // Last stage PE: emit the reconstructed block off wafer.\n"
        << "    send_block(&output);\n";
    }
  } else {
    o << "    // Forward the partially processed block to stage PE 1.\n"
      << "    send_intermediate(INTER_A, &quant, &signs, fl);\n";
  }
  o << "}\n\n"
    << "comptime {\n"
    << "    @bind_local_task(relay, relayColor);\n"
    << "    @bind_local_task(compute, computeColor);\n"
    << "    @activate(relayColor);\n"
    << "}\n";
  return o.str();
}

std::string CslCodegen::generate_stage(const PipelinePlan& plan,
                                       PipeDirection direction) const {
  std::ostringstream o;
  const u32 n = block_size_;
  o << "// stage_pe.csl — interior pipeline stage PEs\n"
    << "param position: u16;  // 1.." << plan.length() - 1
    << " within the pipeline\n\n"
    << "// Raw blocks destined for eastern pipelines pass through this\n"
    << "// PE's router (W -> E) without software involvement; only the\n"
    << "// intermediate data of this pipeline rides up the RAMP.\n\n";
  for (u32 g = 1; g < plan.length(); ++g) {
    o << "// ---- stage group " << g << " (" << plan.groups[g].cycles
      << " modeled cycles) ----\n"
      << "task stage_group_" << g << "() void {\n";
    for (const auto& stage : plan.groups[g].stages) {
      o << stage_body(stage, n);
    }
    if (g + 1 == plan.length()) {
      o << (direction == PipeDirection::kCompress
                ? "    send_record(fl, &signs, &planes);\n"
                : "    send_block(&output);\n");
    } else {
      o << "    send_intermediate(" << (g % 2 == 0 ? "INTER_A" : "INTER_B")
        << ", &quant, &signs, fl);\n";
    }
    o << "}\n\n";
  }
  o << "comptime {\n"
    << "    // Wavelet-triggered: the task runs whenever a block arrives\n"
    << "    // on this PE's inter color (cf. Fig. 4's data triggering).\n"
    << "    @bind_data_task(stage_group_for(position), inter_in_color);\n"
    << "}\n";
  return o.str();
}

std::string CslCodegen::generate_readme(const PipelinePlan& plan,
                                        PipeDirection direction) const {
  std::ostringstream o;
  o << "CereSZ generated CSL "
    << (direction == PipeDirection::kCompress ? "compression" : "decompression")
    << " program\n"
    << "============================\n\n"
    << "Mesh: " << wse_.rows << " x " << wse_.cols << " PEs, pipeline length "
    << plan.length() << ", block size " << block_size_ << ".\n"
    << "Stage schedule (Algorithm 1):\n";
  for (u32 g = 0; g < plan.length(); ++g) {
    o << "  PE " << g << " (" << plan.groups[g].cycles << " cycles):";
    for (const auto& s : plan.groups[g].stages) o << ' ' << s.name();
    o << '\n';
  }
  o << "\nBuild (Cerebras SDK):\n"
    << "  cslc layout.csl --fabric-dims=" << wse_.cols + 7 << ","
    << wse_.rows + 2 << " --fabric-offsets=4,1 -o out\n"
    << "  cs_python run.py --name out\n\n"
    << "This artifact is generated; the repository's simulator executes a\n"
    << "semantically equivalent program with matching cycle accounting.\n";
  return o.str();
}

}  // namespace ceresz::mapping
