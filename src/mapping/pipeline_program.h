// Builds the CereSZ programs that run on the simulated wafer: the three
// parallelization strategies of Section 4 realized as tasks, colors, and
// routes on a Fabric.
//
// Layout of one PE row (Figure 6, right):
//   - the row holds n_pipes = cols / pipeline_length pipelines; pipeline p
//     occupies columns [p*PL, (p+1)*PL);
//   - raw blocks stream west-to-east through the pipeline-head PEs, which
//     run the Figure 9(b) relay program: forward (n_pipes-1-h) blocks per
//     round, then keep one and start computing;
//   - within a pipeline, each PE executes one stage group of the
//     Algorithm 1 plan and forwards the partially processed block east;
//   - the last PE of a pipeline emits the finished record.
//
// Colors: consecutive hops alternate between two colors (as the paper's
// Figure 9(b) pseudocode does with its recv/send color pair), so a PE's
// inbound and outbound routes never collide.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "mapping/block_work.h"
#include "mapping/scheduler.h"
#include "wse/fabric.h"

namespace ceresz::mapping {

/// Fixed color assignments of the CereSZ wafer program.
namespace colors {
inline constexpr wse::Color kRaw[2] = {0, 1};    ///< head-to-head block relay
inline constexpr wse::Color kInter[2] = {2, 3};  ///< intra-pipeline stages
inline constexpr wse::Color kRelayTask = 10;
inline constexpr wse::Color kComputeTask = 11;
}  // namespace colors

/// Cycles the relay task body consumes per invocation (counter update and
/// async-mov setup, Figure 9(b)); part of the paper's C1.
inline constexpr Cycles kRelayTaskConsume = 4;

/// Direction of the pipeline's data flow.
enum class PipeDirection { kCompress, kDecompress };

/// One block queued for a row: its payload extent in wavelets, its global
/// tag, and the work state it will accumulate.
struct RowBlock {
  u32 extent = 0;
  u64 tag = 0;
  std::shared_ptr<BlockWork> work;
};

/// Install the CereSZ program for one PE row onto `fabric` and inject the
/// row's block stream. `row_blocks.size()` must be a multiple of the row's
/// pipeline count (the mapper pads). The plan's group count is the
/// pipeline length.
///
/// `ingress_cycles_per_wavelet` models the data generation rate (Section
/// 4.4, assumption 1): successive blocks arrive at the row's first PE
/// spaced by extent * rate cycles. 1.0 is a saturated stream (one wavelet
/// per cycle, the paper's evaluation setting); larger values model a
/// producer slower than the fabric, which caps the row's throughput at
/// the generation rate regardless of the PE count.
///
/// `usable_cols` restricts the program to the row's westmost columns
/// (0 = the whole row). The fault-tolerant mapper passes the column count
/// west of the row's first dead PE, so no route or task ever touches a
/// failed PE.
void build_row_program(wse::Fabric& fabric, u32 row,
                       const PipelinePlan& plan, PipeDirection direction,
                       std::shared_ptr<const SubStageExecutor> executor,
                       std::vector<RowBlock> row_blocks,
                       f64 ingress_cycles_per_wavelet = 1.0,
                       u32 usable_cols = 0);

/// Estimated local SRAM one stage group needs (message staging plus the
/// buffers its sub-stages read and write).
std::size_t estimate_group_memory(const StageGroup& group, u32 block_size,
                                  PipeDirection direction);

/// Section 4.4's pipeline configuration, operationalized: the shortest
/// cycle-balanced pipeline (fastest, by Formula 4) whose widest stage
/// group fits in `sram_bytes`. When no cycle-balanced split fits — the
/// cycle-greedy Algorithm 1 does not minimize memory — falls back to a
/// memory-greedy partition (fill each PE up to its SRAM budget), trading
/// balance for feasibility. Throws ceresz::Error if even single-stage
/// groups exceed SRAM (the block is too large for the hardware under any
/// split).
PipelinePlan plan_with_sram(const GreedyScheduler& scheduler,
                            const std::vector<core::SubStage>& stages,
                            u32 block_size, PipeDirection direction,
                            std::size_t sram_bytes);

/// Convenience: plan_with_sram(...).length().
u32 choose_pipeline_length(const GreedyScheduler& scheduler,
                           const std::vector<core::SubStage>& stages,
                           u32 block_size, PipeDirection direction,
                           std::size_t sram_bytes);

}  // namespace ceresz::mapping
