#include "obs/telemetry.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace ceresz::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Write all of `data`, tolerating short writes; best effort (the
/// scraper may have gone away — that is its problem, not ours).
void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(int code, const char* reason,
                          const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(code);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SpanLog
// ---------------------------------------------------------------------------

SpanLog::SpanLog(std::size_t capacity) : slots_(capacity) {
  CERESZ_CHECK(capacity >= 1, "SpanLog: capacity must be at least 1");
}

void SpanLog::push(SpanRecord rec) {
  std::lock_guard lock(mu_);
  slots_[count_ % slots_.size()] = std::move(rec);
  ++count_;
}

std::vector<SpanRecord> SpanLog::snapshot() const {
  std::lock_guard lock(mu_);
  const u64 cap = slots_.size();
  const u64 start = count_ > cap ? count_ - cap : 0;
  std::vector<SpanRecord> out;
  out.reserve(static_cast<std::size_t>(count_ - start));
  for (u64 k = start; k < count_; ++k) {
    out.push_back(slots_[k % cap]);
  }
  return out;
}

u64 SpanLog::pushed() const {
  std::lock_guard lock(mu_);
  return count_;
}

std::string SpanLog::to_json() const {
  const std::vector<SpanRecord> recs = snapshot();
  std::string out = "{\"pushed\":";
  {
    std::lock_guard lock(mu_);
    out += std::to_string(count_);
  }
  out += ",\"spans\":[";
  bool first = true;
  for (const SpanRecord& r : recs) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"trace_id\":";
    out += std::to_string(r.trace_id);
    out += ",\"request_id\":";
    out += std::to_string(r.request_id);
    out += ",\"tenant_id\":";
    out += std::to_string(r.tenant_id);
    out += ",\"name\":";
    append_json_string(out, r.name);
    out += ",\"status\":";
    append_json_string(out, r.status);
    out += ",\"ts_ns\":";
    out += std::to_string(r.ts_ns);
    out += ",\"dur_ns\":";
    out += std::to_string(r.dur_ns);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// TelemetryEndpoint
// ---------------------------------------------------------------------------

TelemetryEndpoint::TelemetryEndpoint(TelemetryOptions options)
    : options_(options) {}

TelemetryEndpoint::~TelemetryEndpoint() { stop(); }

void TelemetryEndpoint::start() {
  CERESZ_CHECK(listen_fd_ < 0, "TelemetryEndpoint: already started");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CERESZ_CHECK(fd >= 0, "TelemetryEndpoint: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    CERESZ_FAIL(std::string("TelemetryEndpoint: bind failed: ") +
                std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    CERESZ_FAIL(std::string("TelemetryEndpoint: listen failed: ") +
                std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  if (options_.logger != nullptr) {
    options_.logger->info("telemetry.start",
                          {{"port", static_cast<u32>(port_)}});
  }
}

void TelemetryEndpoint::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void TelemetryEndpoint::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100);
    if (rc <= 0) continue;  // timeout (recheck stop flag) or EINTR
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    ::close(conn);
  }
}

void TelemetryEndpoint::handle_connection(int fd) {
  // Scrapes are tiny: read up to 4 KiB or until the header terminator,
  // with poll-bounded patience so a stuck client cannot wedge the loop.
  std::string req;
  char buf[1024];
  for (int rounds = 0; rounds < 20 && req.find("\r\n\r\n") ==
       std::string::npos && req.size() < 4096; ++rounds) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, 100) <= 0) {
      if (stop_.load(std::memory_order_acquire)) return;
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t sp1 = req.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : req.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    write_all(fd, http_response(400, "Bad Request", "text/plain",
                                "malformed request\n"));
    return;
  }
  const std::string method = req.substr(0, sp1);
  std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  served_.fetch_add(1, std::memory_order_relaxed);
  if (method != "GET") {
    write_all(fd, http_response(405, "Method Not Allowed", "text/plain",
                                "GET only\n"));
    return;
  }

  if (path == "/healthz") {
    if (draining_.load(std::memory_order_acquire)) {
      write_all(fd, http_response(503, "Service Unavailable", "text/plain",
                                  "draining\n"));
    } else {
      write_all(fd, http_response(200, "OK", "text/plain", "ok\n"));
    }
    return;
  }
  if (path == "/metrics" && options_.metrics != nullptr) {
    const std::string body = to_prometheus(options_.metrics->snapshot());
    write_all(fd, http_response(200, "OK",
                                "text/plain; version=0.0.4", body));
    return;
  }
  if (path == "/tracez" && options_.spans != nullptr) {
    write_all(fd, http_response(200, "OK", "application/json",
                                options_.spans->to_json()));
    return;
  }
  write_all(fd,
            http_response(404, "Not Found", "text/plain", "not found\n"));
}

}  // namespace ceresz::obs
