#include "obs/analysis/perfgate.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>

#include "common/error.h"
#include "obs/analysis/json.h"

namespace ceresz::obs::analysis {

namespace {

std::string fmt_g(f64 v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string pad(std::string s, std::size_t width) {
  if (s.size() < width) s.resize(width, ' ');
  return s;
}

const char* status_name(GateStatus s) {
  switch (s) {
    case GateStatus::kOk: return "ok";
    case GateStatus::kWarn: return "WARN";
    case GateStatus::kFail: return "FAIL";
    case GateStatus::kMissing: return "MISSING";
  }
  return "?";
}

}  // namespace

std::string HistoryRecord::to_jsonl() const {
  auto esc = [](const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  };
  char num[64];
  std::snprintf(num, sizeof(num), "%.17g", value);
  char nz[64];
  std::snprintf(nz, sizeof(nz), "%.6g", noise);
  std::string line = "{\"bench\": " + esc(bench) +
                     ", \"metric\": " + esc(metric) + ", \"value\": " + num +
                     ", \"unit\": " + esc(unit) +
                     ", \"better\": " + esc(better) + ", \"noise\": " + nz;
  if (!timestamp.empty()) line += ", \"timestamp\": " + esc(timestamp);
  if (!git_sha.empty()) line += ", \"git_sha\": " + esc(git_sha);
  if (!host.empty()) line += ", \"host\": " + esc(host);
  line += "}";
  return line;
}

std::vector<HistoryRecord> parse_history_jsonl(std::string_view text) {
  std::vector<HistoryRecord> out;
  for (const JsonValue& line : parse_jsonl(text)) {
    CERESZ_CHECK(line.is_object(), "history: record must be an object");
    HistoryRecord r;
    r.bench = line.string_or("bench", "");
    r.metric = line.string_or("metric", "");
    CERESZ_CHECK(!r.bench.empty() && !r.metric.empty(),
                 "history: record needs \"bench\" and \"metric\"");
    const JsonValue& value = line.at("value");
    CERESZ_CHECK(value.kind == JsonValue::Kind::kNumber,
                 "history: record needs a numeric \"value\"");
    r.value = value.number;
    r.unit = line.string_or("unit", "");
    r.better = line.string_or("better", "higher");
    CERESZ_CHECK(r.better == "higher" || r.better == "lower",
                 "history: \"better\" must be \"higher\" or \"lower\"");
    r.noise = line.number_or("noise", 0.10);
    CERESZ_CHECK(r.noise >= 0.0, "history: \"noise\" must be >= 0");
    r.timestamp = line.string_or("timestamp", "");
    r.git_sha = line.string_or("git_sha", "");
    r.host = line.string_or("host", "");
    out.push_back(std::move(r));
  }
  return out;
}

void stamp_history_metadata(HistoryRecord& record) {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    char buf[32];
    if (std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc) > 0) {
      record.timestamp = buf;
    }
  }
  const char* sha = std::getenv("GITHUB_SHA");
  if (sha == nullptr || sha[0] == '\0') sha = std::getenv("CERESZ_GIT_SHA");
  if (sha != nullptr && sha[0] != '\0') record.git_sha = sha;
  char hostname[256];
  if (gethostname(hostname, sizeof(hostname)) == 0) {
    hostname[sizeof(hostname) - 1] = '\0';
    record.host = hostname;
  }
}

GateReport evaluate_gate(const std::vector<HistoryRecord>& baseline,
                         const std::vector<HistoryRecord>& current,
                         f64 hard_factor) {
  CERESZ_CHECK(hard_factor >= 1.0, "perfgate: hard_factor must be >= 1");
  std::map<std::string, const HistoryRecord*> current_by_key;
  for (const HistoryRecord& r : current) {
    // Last record wins: a re-run bench overwrites its earlier line.
    current_by_key[r.key()] = &r;
  }

  GateReport report;
  for (const HistoryRecord& base : baseline) {
    GateResult res;
    res.baseline = base;
    const auto it = current_by_key.find(base.key());
    if (it == current_by_key.end()) {
      res.status = GateStatus::kMissing;
      ++report.missing;
      ++report.warned;
      report.results.push_back(std::move(res));
      continue;
    }
    res.current = it->second->value;
    if (base.value != 0.0) {
      const f64 rel = (res.current - base.value) / std::abs(base.value);
      // Positive deviation = moved in the worse direction.
      res.deviation = base.better == "higher" ? -rel : rel;
    } else {
      res.deviation = res.current == 0.0 ? 0.0 : 1.0;
      if (base.better == "lower" && res.current < 0.0) res.deviation = 0.0;
    }
    if (res.deviation <= base.noise) {
      res.status = GateStatus::kOk;
    } else if (res.deviation <= base.noise * hard_factor) {
      res.status = GateStatus::kWarn;
      ++report.warned;
    } else {
      res.status = GateStatus::kFail;
      ++report.failed;
    }
    report.results.push_back(std::move(res));
  }
  return report;
}

std::string render_gate(const GateReport& report) {
  std::string out;
  out += "CereSZ perf gate\n";
  out += pad("bench/metric", 44) + pad("baseline", 12) + pad("current", 12) +
         pad("deviation", 11) + pad("band", 9) + "status\n";
  for (const GateResult& r : report.results) {
    std::string dev = r.status == GateStatus::kMissing
                          ? "-"
                          : fmt_g(r.deviation * 100.0) + "%";
    std::string cur =
        r.status == GateStatus::kMissing ? "-" : fmt_g(r.current);
    out += pad(r.baseline.key(), 44) + pad(fmt_g(r.baseline.value), 12) +
           pad(cur, 12) + pad(dev, 11) +
           pad(fmt_g(r.baseline.noise * 100.0) + "%", 9) +
           status_name(r.status) + "\n";
  }
  out += "summary: " + std::to_string(report.results.size()) + " metrics, " +
         std::to_string(report.failed) + " failed, " +
         std::to_string(report.warned) + " warned (" +
         std::to_string(report.missing) + " missing)\n";
  out += report.failed ? "RESULT: FAIL\n"
                       : (report.warned ? "RESULT: WARN\n" : "RESULT: PASS\n");
  return out;
}

}  // namespace ceresz::obs::analysis
