// Trace stitching: merge a CLIENT-side Chrome trace and a SERVER-side
// Chrome trace of the same traffic into one cross-process view, joined
// by the distributed trace context (obs/trace_context.h) that the CSNP
// v4 frame header carries across the wire.
//
// The join key is structural, not temporal: every "client.attempt" span
// carries its own span id, the frame it sends carries that id as
// parent_span_id, and the server's "server.request" root records it
// back — so each RETRIED attempt of one logical request matches its own
// server-side tree 1:1, and a request the server never saw (connect
// refused, frame lost) simply has no match. From a matched pair the
// stitcher derives the paper-facing latency decomposition:
//
//   network  = client attempt duration - server request duration
//              (wire + kernel + scheduling on both sides; clamped >= 0)
//   queue    = the server's "server.queue_wait" span (arrival -> worker)
//   engine   = the server's "server.engine" span (ParallelEngine run)
//   retry    = client request duration - final attempt duration
//              (time burned on failed attempts + backoff)
//
// Clock domains: client and server timestamps are each relative to
// their OWN tracer epoch and are never compared directly — only
// durations cross the domain boundary. The merged Chrome trace aligns
// the two domains with the median midpoint offset over matched pairs,
// which is exact enough for visual inspection (the structural join does
// not depend on it).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "obs/analysis/perfgate.h"
#include "obs/analysis/trace_analysis.h"

namespace ceresz::obs::analysis {

/// One client wire attempt, with its server-side tree when matched.
struct StitchedAttempt {
  u64 span_id = 0;        ///< the client attempt's span id (join key)
  i64 attempt = 0;        ///< 1-based attempt number within the request
  u64 client_ts_ns = 0;   ///< client-clock
  u64 client_dur_ns = 0;
  bool matched = false;   ///< a server.request with our span id exists
  u64 server_ts_ns = 0;   ///< server-clock (not comparable to client ts)
  u64 server_dur_ns = 0;  ///< the server.request root span
  u64 queue_wait_ns = 0;
  u64 decode_ns = 0;
  u64 engine_ns = 0;
  u64 encode_ns = 0;
  u64 write_ns = 0;
  u64 network_ns = 0;     ///< client_dur - server_dur, clamped to >= 0
};

/// One logical client request ("client.request" root) and its attempts.
struct StitchedRequest {
  u64 trace_id = 0;
  u64 request_id = 0;
  u32 tenant_id = 0;
  u64 client_ts_ns = 0;
  u64 client_dur_ns = 0;      ///< whole logical request, retries included
  u64 retry_overhead_ns = 0;  ///< client_dur - final attempt (0 if one shot)
  std::vector<StitchedAttempt> attempts;  ///< ts-ordered
};

/// Aggregates over the whole stitch (means are over matched attempts,
/// except the request-level means which are over requests).
struct StitchTotals {
  u64 requests = 0;
  u64 attempts = 0;
  u64 matched_attempts = 0;
  u64 server_roots = 0;       ///< server.request spans in the server trace
  f64 match_rate = 0.0;       ///< matched_attempts / attempts (1.0 when 0)
  f64 server_coverage = 0.0;  ///< request_span_coverage(server)
  f64 mean_network_ns = 0.0;
  f64 mean_queue_wait_ns = 0.0;
  f64 mean_engine_ns = 0.0;
  f64 mean_server_ns = 0.0;
  f64 mean_request_ns = 0.0;
  f64 mean_retry_overhead_ns = 0.0;
};

struct StitchReport {
  std::vector<StitchedRequest> requests;  ///< ordered by client start
  StitchTotals totals;
};

/// Join `client` and `server` traces on the wire trace context.
StitchReport stitch_traces(const TraceData& client, const TraceData& server);

/// Fraction of the server's busy wall time covered by request-tagged
/// spans: over every host-pid span-tree root, the share of total root
/// duration whose root (or any descendant) carries a nonzero trace_id
/// arg. The acceptance bar for "every expensive thing is attributable".
f64 request_span_coverage(const TraceData& server);

/// Human-readable per-request table plus the aggregate breakdown.
std::string render_stitch_report(const StitchReport& report);

/// Perfgate history records under bench "service_trace": match rate,
/// span coverage, and the mean breakdown components.
std::vector<HistoryRecord> stitch_history_records(const StitchReport& report);

/// One Chrome trace with both processes: client host events under pid 1
/// ("ceresz_client"), server host events under pid 3 ("ceresz_server")
/// shifted onto the client clock by the median matched-pair offset.
std::string merged_chrome_trace_json(const TraceData& client,
                                     const TraceData& server,
                                     const StitchReport& report);

}  // namespace ceresz::obs::analysis
