#include "obs/analysis/digest.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace ceresz::obs::analysis {

QuantileEstimator::QuantileEstimator(f64 p) : p_(p) {
  CERESZ_CHECK(p > 0.0 && p < 1.0,
               "QuantileEstimator: p must be in (0, 1)");
  dn_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
}

void QuantileEstimator::observe(f64 x) {
  if (count_ < 5) {
    q_[count_++] = x;
    if (count_ == 5) {
      std::sort(q_.begin(), q_.end());
      for (int i = 0; i < 5; ++i) {
        n_[i] = i + 1;
        np_[i] = 1.0 + 4.0 * dn_[i];
      }
    }
    return;
  }
  ++count_;

  // Find the cell x falls into, clamping the extreme markers.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = std::max(q_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];

  // Nudge the three interior markers toward their desired positions:
  // parabolic (P^2) interpolation, linear when that would de-sort them.
  for (int i = 1; i <= 3; ++i) {
    const f64 d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const f64 s = d >= 0 ? 1.0 : -1.0;
      const f64 qp =
          q_[i] + s / (n_[i + 1] - n_[i - 1]) *
                      ((n_[i] - n_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                           (n_[i + 1] - n_[i]) +
                       (n_[i + 1] - n_[i] - s) * (q_[i] - q_[i - 1]) /
                           (n_[i] - n_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {
        const int j = i + (s > 0 ? 1 : -1);
        q_[i] += s * (q_[j] - q_[i]) / (n_[j] - n_[i]);
      }
      n_[i] += s;
    }
  }
}

f64 QuantileEstimator::estimate() const {
  if (count_ == 0) return std::numeric_limits<f64>::quiet_NaN();
  if (count_ >= 5) return q_[2];
  // Small-sample fallback: exact order statistic with linear
  // interpolation over the stored values.
  std::array<f64, 5> sorted = q_;
  std::sort(sorted.begin(), sorted.begin() + count_);
  const f64 rank = p_ * static_cast<f64>(count_ - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min<std::size_t>(lo + 1, count_ - 1);
  const f64 frac = rank - static_cast<f64>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

LatencyDigest::LatencyDigest() : p50_(0.50), p95_(0.95), p99_(0.99) {}

void LatencyDigest::observe(f64 seconds) {
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
  p50_.observe(seconds);
  p95_.observe(seconds);
  p99_.observe(seconds);
}

f64 LatencyDigest::min() const {
  return count_ ? min_ : std::numeric_limits<f64>::quiet_NaN();
}

f64 LatencyDigest::max() const {
  return count_ ? max_ : std::numeric_limits<f64>::quiet_NaN();
}

f64 LatencyDigest::mean() const {
  return count_ ? sum_ / static_cast<f64>(count_)
                : std::numeric_limits<f64>::quiet_NaN();
}

}  // namespace ceresz::obs::analysis
