#include "obs/analysis/trace_analysis.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>

#include "common/error.h"
#include "obs/analysis/json.h"

namespace ceresz::obs::analysis {

namespace {

/// Chrome trace timestamps are microseconds (possibly fractional);
/// convert back to integer nanoseconds.
u64 us_to_ns(f64 us) {
  return us <= 0.0 ? 0 : static_cast<u64>(std::llround(us * 1000.0));
}

Span span_from_event(const JsonValue& e) {
  Span s;
  s.name = e.string_or("name", "");
  s.cat = e.string_or("cat", "");
  const std::string ph = e.string_or("ph", "X");
  s.phase = ph.empty() ? 'X' : ph[0];
  s.pid = static_cast<u32>(e.number_or("pid", kHostPid));
  s.tid = static_cast<u32>(e.number_or("tid", 0));
  s.ts_ns = us_to_ns(e.number_or("ts", 0.0));
  s.dur_ns = us_to_ns(e.number_or("dur", 0.0));
  const JsonValue& args = e.at("args");
  if (args.is_object()) {
    for (const auto& [k, v] : args.object) {
      if (v.kind == JsonValue::Kind::kNumber) {
        s.args[k] = static_cast<i64>(std::llround(v.number));
      }
    }
  }
  return s;
}

}  // namespace

const std::string* TraceData::thread_name(u32 pid, u32 tid) const {
  const auto it = thread_names.find({pid, tid});
  return it == thread_names.end() ? nullptr : &it->second;
}

TraceData load_chrome_trace(std::string_view json_text) {
  const JsonValue root = parse_json(json_text);
  CERESZ_CHECK(root.is_object(), "trace: top level must be an object");
  const JsonValue& events = root.at("traceEvents");
  CERESZ_CHECK(events.is_array(), "trace: missing traceEvents array");

  TraceData trace;
  trace.dropped_events =
      static_cast<u64>(root.at("metadata").number_or("dropped_events", 0.0));
  for (const JsonValue& e : events.array) {
    CERESZ_CHECK(e.is_object(), "trace: event must be an object");
    const std::string ph = e.string_or("ph", "");
    if (ph == "M") {
      const std::string what = e.string_or("name", "");
      const std::string name = e.at("args").string_or("name", "");
      const u32 pid = static_cast<u32>(e.number_or("pid", 0));
      const u32 tid = static_cast<u32>(e.number_or("tid", 0));
      if (what == "process_name") {
        trace.process_names[pid] = name;
      } else if (what == "thread_name") {
        trace.thread_names[{pid, tid}] = name;
      }
      continue;
    }
    Span s = span_from_event(e);
    if (s.phase == 'X') {
      trace.spans.push_back(std::move(s));
    } else {
      trace.instants.push_back(std::move(s));
    }
  }
  std::stable_sort(trace.spans.begin(), trace.spans.end(),
                   [](const Span& a, const Span& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return trace;
}

TraceData from_tracer(const Tracer& tracer) {
  // Round-trip through the exporter: the JSON carries the viewer
  // metadata (process/thread names) that snapshot_events() does not,
  // and keeps file-loaded and live traces on one code path.
  return load_chrome_trace(tracer.chrome_trace_json());
}

// ---------------------------------------------------------------------------
// Span trees.

std::vector<SpanNode> build_span_tree(std::vector<const Span*> spans) {
  // Sort by start time, longest-first on ties, so a parent always
  // precedes the spans it encloses.
  std::sort(spans.begin(), spans.end(), [](const Span* a, const Span* b) {
    if (a->ts_ns != b->ts_ns) return a->ts_ns < b->ts_ns;
    return a->dur_ns > b->dur_ns;
  });

  std::vector<SpanNode> roots;
  std::vector<SpanNode*> stack;  // innermost open span last
  for (const Span* s : spans) {
    while (!stack.empty() && s->ts_ns >= stack.back()->span->end_ns()) {
      stack.pop_back();
    }
    SpanNode node;
    node.span = s;
    node.self_ns = s->dur_ns;
    std::vector<SpanNode>& siblings =
        stack.empty() ? roots : stack.back()->children;
    if (!stack.empty() && s->end_ns() <= stack.back()->span->end_ns()) {
      stack.back()->self_ns -=
          std::min<u64>(stack.back()->self_ns, s->dur_ns);
    }
    siblings.push_back(std::move(node));
    stack.push_back(&siblings.back());
  }
  return roots;
}

std::vector<SpanNode> thread_span_tree(const TraceData& trace, u32 pid,
                                       u32 tid) {
  std::vector<const Span*> mine;
  for (const Span& s : trace.spans) {
    if (s.pid == pid && s.tid == tid) mine.push_back(&s);
  }
  return build_span_tree(std::move(mine));
}

// ---------------------------------------------------------------------------
// Thread-name parsing.

namespace {

/// Parse "<label>:<cycles>" items joined by '+'.
std::vector<StageShare> parse_stage_list(std::string_view text) {
  std::vector<StageShare> out;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('+', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view item = text.substr(begin, end - begin);
    const std::size_t colon = item.rfind(':');
    if (colon != std::string_view::npos && colon > 0) {
      StageShare share;
      share.name = std::string(item.substr(0, colon));
      share.cycles = std::atof(std::string(item.substr(colon + 1)).c_str());
      out.push_back(std::move(share));
    }
    begin = end + 1;
  }
  return out;
}

/// Value of a "key=value" token in a space-separated name, or nullopt.
std::optional<std::string_view> token_value(std::string_view name,
                                            std::string_view key) {
  std::size_t pos = 0;
  while (pos < name.size()) {
    std::size_t end = name.find(' ', pos);
    if (end == std::string_view::npos) end = name.size();
    const std::string_view tok = name.substr(pos, end - pos);
    if (tok.size() > key.size() + 1 &&
        tok.substr(0, key.size()) == key && tok[key.size()] == '=') {
      return tok.substr(key.size() + 1);
    }
    pos = end + 1;
  }
  return std::nullopt;
}

}  // namespace

std::optional<PeIdentity> parse_pe_thread_name(const std::string& name) {
  // "pe[<row>,<col>]" prefix, optionally followed by enrichment tokens.
  if (name.rfind("pe[", 0) != 0) return std::nullopt;
  const std::size_t comma = name.find(',', 3);
  const std::size_t close = name.find(']', 3);
  if (comma == std::string::npos || close == std::string::npos ||
      comma > close) {
    return std::nullopt;
  }
  PeIdentity pe;
  pe.row = static_cast<u32>(std::atoi(name.c_str() + 3));
  pe.col = static_cast<u32>(std::atoi(name.c_str() + comma + 1));
  const std::string_view rest = std::string_view(name).substr(close + 1);
  if (const auto v = token_value(rest, "pipe")) {
    pe.pipe = std::atoi(std::string(*v).c_str());
  }
  if (const auto v = token_value(rest, "stage")) {
    pe.stage_pos = std::atoi(std::string(*v).c_str());
  }
  if (const auto v = token_value(rest, "stages")) {
    pe.stages = parse_stage_list(*v);
  }
  return pe;
}

// ---------------------------------------------------------------------------
// Occupancy.

namespace {

enum Category : int { kCompute = 0, kRelay, kRecv, kSend, kNumCategories };

/// Total length of `intervals` not covered by `higher` (both get merged
/// in place). Used to turn overlapping span sets into a partition.
u64 exclusive_length(std::vector<std::pair<u64, u64>>& intervals,
                     const std::vector<std::pair<u64, u64>>& higher) {
  std::sort(intervals.begin(), intervals.end());
  // Merge the candidate intervals.
  std::vector<std::pair<u64, u64>> merged;
  for (const auto& iv : intervals) {
    if (!merged.empty() && iv.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }
  // Subtract the (already merged, sorted) higher-priority cover.
  u64 total = 0;
  std::size_t h = 0;
  for (auto [lo, hi] : merged) {
    u64 cur = lo;
    while (cur < hi) {
      while (h < higher.size() && higher[h].second <= cur) ++h;
      if (h == higher.size() || higher[h].first >= hi) {
        total += hi - cur;
        break;
      }
      if (higher[h].first > cur) total += higher[h].first - cur;
      cur = std::max(cur, higher[h].second);
    }
  }
  intervals = std::move(merged);
  return total;
}

/// Merge `add` into the sorted, disjoint cover `cover`.
void merge_cover(std::vector<std::pair<u64, u64>>& cover,
                 const std::vector<std::pair<u64, u64>>& add) {
  cover.insert(cover.end(), add.begin(), add.end());
  std::sort(cover.begin(), cover.end());
  std::vector<std::pair<u64, u64>> merged;
  for (const auto& iv : cover) {
    if (!merged.empty() && iv.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }
  cover = std::move(merged);
}

}  // namespace

const PeOccupancy* FabricOccupancy::find(u32 row, u32 col) const {
  for (const PeOccupancy& pe : pes) {
    if (pe.pe.row == row && pe.pe.col == col) return &pe;
  }
  return nullptr;
}

FabricOccupancy fabric_occupancy(const TraceData& trace,
                                 i64 relay_task_color) {
  struct Accum {
    PeIdentity pe;
    std::array<std::vector<std::pair<u64, u64>>, kNumCategories> intervals;
    std::array<u64, kNumCategories> raw_ns{};
    u64 compute_tasks = 0;
    u64 recv_ops = 0;
    u64 relay_ops = 0;
  };
  std::map<u32, Accum> by_tid;
  u64 makespan_ns = 0;

  for (const Span& s : trace.spans) {
    if (s.pid != kFabricPid) continue;
    makespan_ns = std::max(makespan_ns, s.end_ns());
    auto it = by_tid.find(s.tid);
    if (it == by_tid.end()) {
      Accum a;
      const std::string* name = trace.thread_name(kFabricPid, s.tid);
      if (name) {
        if (auto pe = parse_pe_thread_name(*name)) a.pe = *pe;
      }
      a.pe.tid = s.tid;
      it = by_tid.emplace(s.tid, std::move(a)).first;
    }
    Accum& a = it->second;
    int cat;
    if (s.name == "task") {
      cat = s.arg_or("color", -1) == relay_task_color ? kRelay : kCompute;
      if (cat == kCompute) ++a.compute_tasks;
    } else if (s.name == "relay") {
      cat = kRelay;
      ++a.relay_ops;
    } else if (s.name == "recv") {
      cat = kRecv;
      ++a.recv_ops;
    } else if (s.name == "send") {
      cat = kSend;
    } else {
      continue;
    }
    a.intervals[cat].emplace_back(s.ts_ns, s.end_ns());
    a.raw_ns[cat] += s.dur_ns;
  }

  FabricOccupancy occ;
  occ.makespan_ns = makespan_ns;
  for (auto& [tid, a] : by_tid) {
    PeOccupancy pe;
    pe.pe = a.pe;
    pe.compute_ns = a.raw_ns[kCompute];
    pe.relay_ns = a.raw_ns[kRelay];
    pe.recv_ns = a.raw_ns[kRecv];
    pe.send_ns = a.raw_ns[kSend];
    pe.compute_tasks = a.compute_tasks;
    pe.recv_ops = a.recv_ops;
    pe.relay_ops = a.relay_ops;
    if (makespan_ns > 0) {
      std::vector<std::pair<u64, u64>> cover;
      f64* fracs[kNumCategories] = {&pe.compute_frac, &pe.relay_frac,
                                    &pe.recv_frac, &pe.send_frac};
      for (int cat = 0; cat < kNumCategories; ++cat) {
        const u64 ns = exclusive_length(a.intervals[cat], cover);
        *fracs[cat] = static_cast<f64>(ns) / static_cast<f64>(makespan_ns);
        merge_cover(cover, a.intervals[cat]);
      }
      pe.busy_frac =
          pe.compute_frac + pe.relay_frac + pe.recv_frac + pe.send_frac;
    }
    occ.pes.push_back(std::move(pe));
  }
  std::sort(occ.pes.begin(), occ.pes.end(),
            [](const PeOccupancy& a, const PeOccupancy& b) {
              if (a.pe.row != b.pe.row) return a.pe.row < b.pe.row;
              return a.pe.col < b.pe.col;
            });
  return occ;
}

// ---------------------------------------------------------------------------
// Bottlenecks.

std::vector<PipelineBottleneck> pipeline_bottlenecks(
    const FabricOccupancy& occ) {
  std::map<std::pair<u32, u32>, const PeOccupancy*> best;  // (row, pipe)
  for (const PeOccupancy& pe : occ.pes) {
    if (pe.pe.pipe < 0 || pe.compute_tasks == 0) continue;
    const auto key = std::make_pair(pe.pe.row, static_cast<u32>(pe.pe.pipe));
    const auto it = best.find(key);
    if (it == best.end() || pe.compute_ns > it->second->compute_ns) {
      best[key] = &pe;
    }
  }

  std::vector<PipelineBottleneck> out;
  out.reserve(best.size());
  for (const auto& [key, pe] : best) {
    PipelineBottleneck b;
    b.row = key.first;
    b.pipe = key.second;
    b.col = pe->pe.col;
    b.stage_pos = pe->pe.stage_pos < 0 ? 0
                                       : static_cast<u32>(pe->pe.stage_pos);
    b.compute_frac = pe->compute_frac;
    b.cycles_per_block =
        pe->compute_tasks
            ? static_cast<f64>(pe->compute_ns) / kTraceNsPerCycle /
                  static_cast<f64>(pe->compute_tasks)
            : 0.0;
    for (const StageShare& s : pe->pe.stages) {
      if (!b.stage_group.empty()) b.stage_group += '+';
      b.stage_group += s.name;
      if (s.cycles > b.substage_cycles) {
        b.substage_cycles = s.cycles;
        b.bottleneck_substage = s.name;
      }
    }
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace ceresz::obs::analysis
