#include "obs/analysis/stitch.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace ceresz::obs::analysis {

namespace {

u64 arg_u64(const Span& s, const char* key) {
  const i64 v = s.arg_or(key, 0);
  return v < 0 ? 0 : static_cast<u64>(v);
}

std::string fmt_ms(f64 ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", ns * 1e-6);
  return buf;
}

std::string pad(std::string s, std::size_t width) {
  if (s.size() < width) s.resize(width, ' ');
  return s;
}

/// True when `node` or any span below it carries a nonzero trace_id.
bool subtree_tagged(const SpanNode& node) {
  if (arg_u64(*node.span, "trace_id") != 0) return true;
  for (const SpanNode& child : node.children) {
    if (subtree_tagged(child)) return true;
  }
  return false;
}

}  // namespace

f64 request_span_coverage(const TraceData& server) {
  std::set<u32> tids;
  for (const Span& s : server.spans) {
    if (s.pid == kHostPid) tids.insert(s.tid);
  }
  u64 total_ns = 0;
  u64 tagged_ns = 0;
  for (const u32 tid : tids) {
    for (const SpanNode& root : thread_span_tree(server, kHostPid, tid)) {
      total_ns += root.span->dur_ns;
      if (subtree_tagged(root)) tagged_ns += root.span->dur_ns;
    }
  }
  return total_ns == 0
             ? 1.0
             : static_cast<f64>(tagged_ns) / static_cast<f64>(total_ns);
}

StitchReport stitch_traces(const TraceData& client, const TraceData& server) {
  StitchReport report;

  // Server side: request roots keyed by (trace_id, parent_span_id) —
  // the pair the wire carried — and worker-side children keyed by the
  // root span id they inherited through the ambient context.
  std::map<std::pair<u64, u64>, const Span*> roots_by_wire_key;
  std::map<u64, std::vector<const Span*>> children_by_parent;
  for (const Span& s : server.spans) {
    if (s.pid != kHostPid) continue;
    const u64 trace_id = arg_u64(s, "trace_id");
    if (trace_id == 0) continue;
    if (s.name == "server.request") {
      ++report.totals.server_roots;
      const auto key = std::make_pair(trace_id, arg_u64(s, "parent_span_id"));
      // First root wins; a duplicate wire key (a server answering the
      // same attempt twice) would be a protocol bug, not a stitch bug.
      roots_by_wire_key.emplace(key, &s);
    } else {
      const u64 parent = arg_u64(s, "parent_span_id");
      if (parent != 0) children_by_parent[parent].push_back(&s);
    }
  }

  // Client side: logical request roots and their attempt spans.
  std::map<u64, std::vector<const Span*>> attempts_by_parent;
  std::vector<const Span*> request_roots;
  for (const Span& s : client.spans) {
    if (s.pid != kHostPid) continue;
    if (s.name == "client.request") {
      request_roots.push_back(&s);
    } else if (s.name == "client.attempt") {
      const u64 parent = arg_u64(s, "parent_span_id");
      if (parent != 0) attempts_by_parent[parent].push_back(&s);
    }
  }
  std::sort(request_roots.begin(), request_roots.end(),
            [](const Span* a, const Span* b) { return a->ts_ns < b->ts_ns; });

  for (const Span* root : request_roots) {
    StitchedRequest req;
    req.trace_id = arg_u64(*root, "trace_id");
    req.request_id = arg_u64(*root, "request_id");
    req.tenant_id = static_cast<u32>(arg_u64(*root, "tenant_id"));
    req.client_ts_ns = root->ts_ns;
    req.client_dur_ns = root->dur_ns;

    auto it = attempts_by_parent.find(arg_u64(*root, "span_id"));
    if (it != attempts_by_parent.end()) {
      std::sort(it->second.begin(), it->second.end(),
                [](const Span* a, const Span* b) {
                  return a->ts_ns < b->ts_ns;
                });
      for (const Span* a : it->second) {
        StitchedAttempt att;
        att.span_id = arg_u64(*a, "span_id");
        att.attempt = a->arg_or("attempt", 0);
        att.client_ts_ns = a->ts_ns;
        att.client_dur_ns = a->dur_ns;
        const auto match = roots_by_wire_key.find(
            std::make_pair(req.trace_id, att.span_id));
        if (match != roots_by_wire_key.end()) {
          const Span& sroot = *match->second;
          att.matched = true;
          att.server_ts_ns = sroot.ts_ns;
          att.server_dur_ns = sroot.dur_ns;
          att.network_ns = att.client_dur_ns > sroot.dur_ns
                               ? att.client_dur_ns - sroot.dur_ns
                               : 0;
          const auto kids = children_by_parent.find(arg_u64(sroot, "span_id"));
          if (kids != children_by_parent.end()) {
            for (const Span* c : kids->second) {
              if (c->name == "server.queue_wait") {
                att.queue_wait_ns += c->dur_ns;
              } else if (c->name == "server.decode") {
                att.decode_ns += c->dur_ns;
              } else if (c->name == "server.engine") {
                att.engine_ns += c->dur_ns;
              } else if (c->name == "server.encode") {
                att.encode_ns += c->dur_ns;
              } else if (c->name == "server.write") {
                att.write_ns += c->dur_ns;
              }
            }
          }
        }
        req.attempts.push_back(att);
      }
    }
    if (req.attempts.size() > 1) {
      const u64 final_dur = req.attempts.back().client_dur_ns;
      req.retry_overhead_ns = req.client_dur_ns > final_dur
                                  ? req.client_dur_ns - final_dur
                                  : 0;
    }
    report.requests.push_back(std::move(req));
  }

  // Aggregates.
  StitchTotals& t = report.totals;
  t.requests = report.requests.size();
  u64 sum_network = 0, sum_queue = 0, sum_engine = 0, sum_server = 0;
  u64 sum_request = 0, sum_retry = 0;
  for (const StitchedRequest& req : report.requests) {
    sum_request += req.client_dur_ns;
    sum_retry += req.retry_overhead_ns;
    for (const StitchedAttempt& att : req.attempts) {
      ++t.attempts;
      if (!att.matched) continue;
      ++t.matched_attempts;
      sum_network += att.network_ns;
      sum_queue += att.queue_wait_ns;
      sum_engine += att.engine_ns;
      sum_server += att.server_dur_ns;
    }
  }
  t.match_rate = t.attempts == 0 ? 1.0
                                 : static_cast<f64>(t.matched_attempts) /
                                       static_cast<f64>(t.attempts);
  if (t.matched_attempts != 0) {
    const f64 n = static_cast<f64>(t.matched_attempts);
    t.mean_network_ns = static_cast<f64>(sum_network) / n;
    t.mean_queue_wait_ns = static_cast<f64>(sum_queue) / n;
    t.mean_engine_ns = static_cast<f64>(sum_engine) / n;
    t.mean_server_ns = static_cast<f64>(sum_server) / n;
  }
  if (t.requests != 0) {
    const f64 n = static_cast<f64>(t.requests);
    t.mean_request_ns = static_cast<f64>(sum_request) / n;
    t.mean_retry_overhead_ns = static_cast<f64>(sum_retry) / n;
  }
  t.server_coverage = request_span_coverage(server);
  return report;
}

std::string render_stitch_report(const StitchReport& report) {
  const StitchTotals& t = report.totals;
  std::string out;
  out += "stitched service trace (" + std::to_string(t.requests) +
         " requests, " + std::to_string(t.attempts) + " attempts, " +
         std::to_string(t.matched_attempts) + " matched)\n";
  out += pad("trace_id", 16) + pad("request", 9) + pad("tenant", 7) +
         pad("attempts", 9) + pad("total_ms", 10) + pad("network_ms", 11) +
         pad("queue_ms", 9) + pad("engine_ms", 10) + "retry_ms\n";
  constexpr std::size_t kMaxRows = 50;
  for (std::size_t i = 0; i < report.requests.size(); ++i) {
    if (i == kMaxRows) {
      out += "... (" + std::to_string(report.requests.size() - kMaxRows) +
             " more)\n";
      break;
    }
    const StitchedRequest& req = report.requests[i];
    u64 network = 0, queue = 0, engine = 0;
    for (const StitchedAttempt& att : req.attempts) {
      network += att.network_ns;
      queue += att.queue_wait_ns;
      engine += att.engine_ns;
    }
    char tid[24];
    std::snprintf(tid, sizeof(tid), "%012llx",
                  static_cast<unsigned long long>(req.trace_id));
    out += pad(tid, 16) + pad(std::to_string(req.request_id), 9) +
           pad(std::to_string(req.tenant_id), 7) +
           pad(std::to_string(req.attempts.size()), 9) +
           pad(fmt_ms(static_cast<f64>(req.client_dur_ns)), 10) +
           pad(fmt_ms(static_cast<f64>(network)), 11) +
           pad(fmt_ms(static_cast<f64>(queue)), 9) +
           pad(fmt_ms(static_cast<f64>(engine)), 10) +
           fmt_ms(static_cast<f64>(req.retry_overhead_ns)) + "\n";
  }
  char line[256];
  std::snprintf(line, sizeof(line),
                "match rate %.3f, server span coverage %.3f\n",
                t.match_rate, t.server_coverage);
  out += line;
  std::snprintf(
      line, sizeof(line),
      "mean per matched attempt: network %s ms, queue %s ms, engine %s ms, "
      "server total %s ms\n",
      fmt_ms(t.mean_network_ns).c_str(), fmt_ms(t.mean_queue_wait_ns).c_str(),
      fmt_ms(t.mean_engine_ns).c_str(), fmt_ms(t.mean_server_ns).c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "mean per request: total %s ms, retry overhead %s ms\n",
                fmt_ms(t.mean_request_ns).c_str(),
                fmt_ms(t.mean_retry_overhead_ns).c_str());
  out += line;
  return out;
}

std::vector<HistoryRecord> stitch_history_records(const StitchReport& report) {
  const StitchTotals& t = report.totals;
  std::vector<HistoryRecord> out;
  auto add = [&](const char* metric, f64 value, const char* unit,
                 const char* better, f64 noise) {
    HistoryRecord r;
    r.bench = "service_trace";
    r.metric = metric;
    r.value = value;
    r.unit = unit;
    r.better = better;
    r.noise = noise;
    out.push_back(std::move(r));
  };
  // Structural metrics are deterministic — tight bands. The timing
  // means are wall clock on a shared runner — generous bands.
  add("match_rate", t.match_rate, "ratio", "higher", 0.01);
  add("server_span_coverage", t.server_coverage, "ratio", "higher", 0.05);
  if (t.matched_attempts != 0) {
    add("mean_network_ms", t.mean_network_ns * 1e-6, "ms", "lower", 1.0);
    add("mean_queue_wait_ms", t.mean_queue_wait_ns * 1e-6, "ms", "lower",
        1.0);
    add("mean_engine_ms", t.mean_engine_ns * 1e-6, "ms", "lower", 1.0);
  }
  return out;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    }
  }
  out += '"';
}

void append_span_event(std::string& out, const Span& s, u32 pid,
                       i64 shift_ns, bool& first) {
  if (!first) out += ",\n";
  first = false;
  const i64 ts = static_cast<i64>(s.ts_ns) + shift_ns;
  char buf[160];
  out += "{\"name\": ";
  append_json_escaped(out, s.name);
  out += ", \"cat\": ";
  append_json_escaped(out, s.cat.empty() ? std::string("trace") : s.cat);
  std::snprintf(buf, sizeof(buf),
                ", \"ph\": \"%c\", \"pid\": %u, \"tid\": %u, \"ts\": %.3f",
                s.phase, pid, s.tid,
                static_cast<f64>(ts < 0 ? 0 : ts) / 1000.0);
  out += buf;
  if (s.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f",
                  static_cast<f64>(s.dur_ns) / 1000.0);
    out += buf;
  }
  if (!s.args.empty()) {
    out += ", \"args\": {";
    bool first_arg = true;
    for (const auto& [k, v] : s.args) {
      if (!first_arg) out += ", ";
      first_arg = false;
      append_json_escaped(out, k);
      std::snprintf(buf, sizeof(buf), ": %lld",
                    static_cast<long long>(v));
      out += buf;
    }
    out += '}';
  }
  out += '}';
}

void append_meta_event(std::string& out, const char* what, u32 pid, u32 tid,
                       const std::string& name, bool with_tid, bool& first) {
  if (!first) out += ",\n";
  first = false;
  char buf[96];
  out += "{\"name\": \"";
  out += what;
  out += "\", \"ph\": \"M\", \"pid\": ";
  out += std::to_string(pid);
  if (with_tid) {
    std::snprintf(buf, sizeof(buf), ", \"tid\": %u", tid);
    out += buf;
  }
  out += ", \"args\": {\"name\": ";
  append_json_escaped(out, name);
  out += "}}";
}

}  // namespace

std::string merged_chrome_trace_json(const TraceData& client,
                                     const TraceData& server,
                                     const StitchReport& report) {
  constexpr u32 kClientPid = kHostPid;  // 1, as recorded
  constexpr u32 kServerPid = 3;         // past kFabricPid

  // Align the server clock to the client clock with the median midpoint
  // offset over matched (attempt, server root) pairs. With no matches
  // the server timeline starts at 0 unshifted.
  std::vector<i64> offsets;
  for (const StitchedRequest& req : report.requests) {
    for (const StitchedAttempt& att : req.attempts) {
      if (!att.matched) continue;
      const i64 client_mid =
          static_cast<i64>(att.client_ts_ns + att.client_dur_ns / 2);
      const i64 server_mid =
          static_cast<i64>(att.server_ts_ns + att.server_dur_ns / 2);
      offsets.push_back(client_mid - server_mid);
    }
  }
  i64 shift = 0;
  if (!offsets.empty()) {
    std::sort(offsets.begin(), offsets.end());
    shift = offsets[offsets.size() / 2];
  }

  std::string out = "{\n\"traceEvents\": [\n";
  bool first = true;
  append_meta_event(out, "process_name", kClientPid, 0, "ceresz_client",
                    false, first);
  append_meta_event(out, "process_name", kServerPid, 0, "ceresz_server",
                    false, first);
  for (const auto& [key, name] : client.thread_names) {
    if (key.first != kHostPid) continue;
    append_meta_event(out, "thread_name", kClientPid, key.second, name, true,
                      first);
  }
  for (const auto& [key, name] : server.thread_names) {
    if (key.first != kHostPid) continue;
    append_meta_event(out, "thread_name", kServerPid, key.second, name, true,
                      first);
  }
  // Host events only: the fabric's virtual-cycle clock has no meaning
  // on the stitched wall-clock timeline.
  for (const Span& s : client.spans) {
    if (s.pid == kHostPid) append_span_event(out, s, kClientPid, 0, first);
  }
  for (const Span& s : client.instants) {
    if (s.pid == kHostPid) append_span_event(out, s, kClientPid, 0, first);
  }
  for (const Span& s : server.spans) {
    if (s.pid == kHostPid) {
      append_span_event(out, s, kServerPid, shift, first);
    }
  }
  for (const Span& s : server.instants) {
    if (s.pid == kHostPid) {
      append_span_event(out, s, kServerPid, shift, first);
    }
  }
  out += "\n],\n\"metadata\": {\"stitched\": 1, \"matched_attempts\": " +
         std::to_string(report.totals.matched_attempts) + "}\n}\n";
  return out;
}

}  // namespace ceresz::obs::analysis
