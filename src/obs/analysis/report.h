// The ceresz_report payload: one structure combining the Fig. 10-style
// occupancy table, per-pipeline bottleneck attribution, cost-model
// residuals, and latency percentiles, with text and JSON renderers.
//
// Inputs are the two artifacts every instrumented run already writes —
// a Chrome trace (--trace-out) and a metrics export (--metrics-out, the
// JSON flavor) — so the report can be produced offline, in CI, or from
// a live Tracer/MetricsRegistry pair in-process.
#pragma once

#include <string>
#include <vector>

#include "obs/analysis/model_check.h"
#include "obs/analysis/trace_analysis.h"
#include "obs/metrics.h"

namespace ceresz::obs::analysis {

/// Parse a metrics JSON export (obs::to_json output) back into a
/// snapshot. Null gauges (serialized non-finite values) are skipped.
/// Throws ceresz::Error on malformed input.
MetricsSnapshot snapshot_from_json(std::string_view json_text);

struct Report {
  FabricOccupancy occupancy;
  std::vector<PipelineBottleneck> bottlenecks;
  ModelValidation model;

  /// One line per metrics histogram: streaming percentiles estimated
  /// from the bucket counts (HistogramSample::quantile).
  struct LatencyLine {
    std::string name;
    u64 count = 0;
    f64 mean = 0.0;
    f64 p50 = 0.0;
    f64 p95 = 0.0;
    f64 p99 = 0.0;
  };
  std::vector<LatencyLine> latencies;

  /// Trace truncation: max of the trace file's metadata and the
  /// ceresz_obs_trace_dropped_total counter.
  u64 trace_dropped = 0;
};

Report build_report(const TraceData& trace, const MetricsSnapshot& metrics,
                    i64 relay_task_color = kDefaultRelayTaskColor);

/// Human-readable report (the Fig. 10 occupancy table + bottleneck and
/// residual summaries).
std::string render_text(const Report& report);

/// Machine-readable report (stable key names, one JSON object).
std::string render_json(const Report& report);

}  // namespace ceresz::obs::analysis
