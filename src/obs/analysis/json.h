// Minimal JSON reader for the analysis layer: just enough to parse back
// what this codebase itself writes — Chrome trace-event files
// (obs::Tracer), metrics exports (obs::to_json), engine stats JSON, and
// the bench history JSONL records. Numbers become f64, objects become
// name-sorted maps, parse errors throw ceresz::Error (no partial
// results). Not a general-purpose parser: \uXXXX escapes outside the
// control range and non-UTF-8 cleverness are out of scope.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace ceresz::obs::analysis {

struct JsonValue {
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  f64 number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Member lookup; returns a shared null value when absent.
  const JsonValue& at(std::string_view key) const;

  /// `at(key).number` when the member is a number, `fallback` otherwise.
  f64 number_or(std::string_view key, f64 fallback) const;

  /// `at(key).str` when the member is a string, `fallback` otherwise.
  std::string string_or(std::string_view key, std::string fallback) const;
};

/// Parse one complete JSON document. Throws ceresz::Error on malformed
/// input (including trailing non-whitespace bytes).
JsonValue parse_json(std::string_view text);

/// Parse newline-delimited JSON: one document per non-empty line.
/// Throws on the first malformed line (the error names the line number).
std::vector<JsonValue> parse_jsonl(std::string_view text);

}  // namespace ceresz::obs::analysis
