// Streaming percentile digests for per-chunk engine latency.
//
// QuantileEstimator is the P-squared algorithm (Jain & Chlamtac, CACM
// 1985): one quantile tracked with five markers in O(1) memory and O(1)
// per observation — no sample buffer, so a million chunk latencies cost
// the same as a hundred. Estimates are exact up to five observations
// and converge quickly after; unit tests pin the error on known
// distributions. LatencyDigest bundles the report's p50/p95/p99 plus
// min/max/mean over one stream.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.h"

namespace ceresz::obs::analysis {

/// One streaming quantile, P-squared.
class QuantileEstimator {
 public:
  /// `p` in (0, 1), e.g. 0.95 for the 95th percentile.
  explicit QuantileEstimator(f64 p);

  void observe(f64 x);

  /// Current estimate. Exact (order statistic with linear interpolation)
  /// while count() <= 5; the P-squared marker estimate after. NaN when
  /// no observations have been made.
  f64 estimate() const;

  u64 count() const { return count_; }
  f64 p() const { return p_; }

 private:
  f64 p_;
  u64 count_ = 0;
  std::array<f64, 5> q_{};   ///< marker heights
  std::array<f64, 5> n_{};   ///< marker positions (1-based)
  std::array<f64, 5> np_{};  ///< desired positions
  std::array<f64, 5> dn_{};  ///< desired-position increments
};

/// p50/p95/p99 + min/max/mean of one latency stream.
class LatencyDigest {
 public:
  LatencyDigest();

  void observe(f64 seconds);

  u64 count() const { return count_; }
  f64 min() const;
  f64 max() const;
  f64 mean() const;
  f64 p50() const { return p50_.estimate(); }
  f64 p95() const { return p95_.estimate(); }
  f64 p99() const { return p99_.estimate(); }

 private:
  u64 count_ = 0;
  f64 min_ = 0.0;
  f64 max_ = 0.0;
  f64 sum_ = 0.0;
  QuantileEstimator p50_;
  QuantileEstimator p95_;
  QuantileEstimator p99_;
};

}  // namespace ceresz::obs::analysis
