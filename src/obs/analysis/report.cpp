#include "obs/analysis/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "obs/analysis/json.h"
#include "obs/trace.h"

namespace ceresz::obs::analysis {

MetricsSnapshot snapshot_from_json(std::string_view json_text) {
  const JsonValue root = parse_json(json_text);
  CERESZ_CHECK(root.is_object(), "metrics: top level must be an object");

  MetricsSnapshot snap;
  for (const auto& [name, v] : root.at("counters").object) {
    snap.counters.push_back({name, static_cast<u64>(v.number)});
  }
  for (const auto& [name, v] : root.at("gauges").object) {
    if (v.kind != JsonValue::Kind::kNumber) continue;  // serialized NaN/Inf
    snap.gauges.push_back({name, v.number});
  }
  for (const auto& [name, v] : root.at("histograms").object) {
    MetricsSnapshot::HistogramSample h;
    h.name = name;
    h.sum = v.number_or("sum", 0.0);
    for (const JsonValue& b : v.at("buckets").array) {
      const JsonValue& le = b.at("le");
      if (le.kind == JsonValue::Kind::kNumber) h.bounds.push_back(le.number);
      const u64 n = static_cast<u64>(b.number_or("count", 0.0));
      h.counts.push_back(n);
      h.count += n;
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

Report build_report(const TraceData& trace, const MetricsSnapshot& metrics,
                    i64 relay_task_color) {
  Report report;
  report.occupancy = fabric_occupancy(trace, relay_task_color);
  report.bottlenecks = pipeline_bottlenecks(report.occupancy);
  report.model = validate_model(report.occupancy, metrics);
  report.trace_dropped = std::max(
      trace.dropped_events, metrics.counter_value(kMetricTraceDropped));
  for (const auto& h : metrics.histograms) {
    Report::LatencyLine line;
    line.name = h.name;
    line.count = h.count;
    line.mean = h.count ? h.sum / static_cast<f64>(h.count) : 0.0;
    line.p50 = h.quantile(0.50);
    line.p95 = h.quantile(0.95);
    line.p99 = h.quantile(0.99);
    report.latencies.push_back(std::move(line));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Renderers.

namespace {

std::string fmt(const char* spec, f64 v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

std::string fmt_frac(f64 v) { return fmt("%6.3f", v); }

std::string pad(std::string s, std::size_t width) {
  if (s.size() < width) s.resize(width, ' ');
  return s;
}

std::string json_num(f64 v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string render_text(const Report& report) {
  std::string out;
  out += "CereSZ trace report\n";
  out += "===================\n";
  out += "fabric makespan: " +
         std::to_string(report.occupancy.makespan_ns / kTraceNsPerCycle) +
         " cycles over " + std::to_string(report.occupancy.pes.size()) +
         " PEs";
  if (report.model.available) {
    out += ", " + std::to_string(report.model.rounds_measured) + " rounds";
  }
  out += "\n";
  out += "trace events dropped: " + std::to_string(report.trace_dropped);
  if (report.trace_dropped > 0) out += "  ** TRACE TRUNCATED **";
  out += "\n\n";

  out += "Fabric occupancy (fraction of makespan; Fig. 10)\n";
  out += pad("PE", 12) + pad("pipe", 6) + pad("stage", 7) +
         pad("compute", 9) + pad("relay", 9) + pad("recv", 9) +
         pad("send", 9) + pad("busy", 9) + "role\n";
  for (const PeOccupancy& pe : report.occupancy.pes) {
    std::string role;
    for (const StageShare& s : pe.pe.stages) {
      if (!role.empty()) role += '+';
      role += s.name;
    }
    out += pad("pe[" + std::to_string(pe.pe.row) + "," +
                   std::to_string(pe.pe.col) + "]",
               12) +
           pad(pe.pe.pipe < 0 ? "-" : std::to_string(pe.pe.pipe), 6) +
           pad(pe.pe.stage_pos < 0 ? "-" : std::to_string(pe.pe.stage_pos),
               7) +
           pad(fmt_frac(pe.compute_frac), 9) +
           pad(fmt_frac(pe.relay_frac), 9) + pad(fmt_frac(pe.recv_frac), 9) +
           pad(fmt_frac(pe.send_frac), 9) + pad(fmt_frac(pe.busy_frac), 9) +
           role + "\n";
  }

  if (!report.bottlenecks.empty()) {
    out += "\nPipeline bottlenecks (Algorithm 1 objective)\n";
    out += pad("row", 5) + pad("pipe", 6) + pad("PE", 12) +
           pad("substage", 16) + pad("modeled cyc", 13) +
           pad("meas cyc/blk", 14) + pad("occupancy", 11) + "stage group\n";
    for (const PipelineBottleneck& b : report.bottlenecks) {
      out += pad(std::to_string(b.row), 5) + pad(std::to_string(b.pipe), 6) +
             pad("pe[" + std::to_string(b.row) + "," +
                     std::to_string(b.col) + "]",
                 12) +
             pad(b.bottleneck_substage, 16) +
             pad(fmt("%.1f", b.substage_cycles), 13) +
             pad(fmt("%.1f", b.cycles_per_block), 14) +
             pad(fmt_frac(b.compute_frac), 11) + b.stage_group + "\n";
    }
  }

  out += "\nCost model validation (Formulas 2-4)\n";
  if (!report.model.available) {
    out += "  unavailable: " + report.model.unavailable_reason + "\n";
  } else {
    out += pad("term", 20) + pad("formula", 11) + pad("predicted", 13) +
           pad("measured", 13) + "residual\n";
    for (const TermCheck& t : report.model.terms) {
      out += pad(t.name, 20) + pad(t.formula, 11) +
             pad(fmt("%.1f", t.predicted), 13) +
             pad(fmt("%.1f", t.measured), 13) +
             fmt("%+.1f%%", t.residual * 100.0) + "\n";
    }
  }

  if (!report.latencies.empty()) {
    out += "\nLatency digests (from metrics histograms)\n";
    out += pad("histogram", 44) + pad("count", 8) + pad("mean", 12) +
           pad("p50", 12) + pad("p95", 12) + "p99\n";
    for (const Report::LatencyLine& l : report.latencies) {
      out += pad(l.name, 44) + pad(std::to_string(l.count), 8) +
             pad(fmt("%.3g", l.mean), 12) + pad(fmt("%.3g", l.p50), 12) +
             pad(fmt("%.3g", l.p95), 12) + fmt("%.3g", l.p99) + "\n";
    }
  }
  return out;
}

std::string render_json(const Report& report) {
  std::string out = "{\n";
  out += "  \"makespan_cycles\": " +
         std::to_string(report.occupancy.makespan_ns / kTraceNsPerCycle) +
         ",\n";
  out += "  \"trace_dropped\": " + std::to_string(report.trace_dropped) +
         ",\n";

  out += "  \"occupancy\": [";
  bool first = true;
  for (const PeOccupancy& pe : report.occupancy.pes) {
    out += first ? "\n" : ",\n";
    first = false;
    std::string role;
    for (const StageShare& s : pe.pe.stages) {
      if (!role.empty()) role += '+';
      role += s.name;
    }
    out += "    {\"row\": " + std::to_string(pe.pe.row) +
           ", \"col\": " + std::to_string(pe.pe.col) +
           ", \"pipe\": " + std::to_string(pe.pe.pipe) +
           ", \"stage\": " + std::to_string(pe.pe.stage_pos) +
           ", \"compute\": " + json_num(pe.compute_frac) +
           ", \"relay\": " + json_num(pe.relay_frac) +
           ", \"recv\": " + json_num(pe.recv_frac) +
           ", \"send\": " + json_num(pe.send_frac) +
           ", \"busy\": " + json_num(pe.busy_frac) +
           ", \"role\": " + json_str(role) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"bottlenecks\": [";
  first = true;
  for (const PipelineBottleneck& b : report.bottlenecks) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"row\": " + std::to_string(b.row) +
           ", \"pipe\": " + std::to_string(b.pipe) +
           ", \"col\": " + std::to_string(b.col) +
           ", \"stage_group\": " + json_str(b.stage_group) +
           ", \"bottleneck_substage\": " + json_str(b.bottleneck_substage) +
           ", \"substage_cycles\": " + json_num(b.substage_cycles) +
           ", \"measured_cycles_per_block\": " +
           json_num(b.cycles_per_block) +
           ", \"compute_frac\": " + json_num(b.compute_frac) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"model\": {\"available\": ";
  out += report.model.available ? "true" : "false";
  if (!report.model.available) {
    out += ", \"reason\": " + json_str(report.model.unavailable_reason);
  } else {
    out += ", \"rounds\": " + std::to_string(report.model.rounds_measured);
    out += ", \"terms\": [";
    first = true;
    for (const TermCheck& t : report.model.terms) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "      {\"name\": " + json_str(t.name) +
             ", \"formula\": " + json_str(t.formula) +
             ", \"predicted\": " + json_num(t.predicted) +
             ", \"measured\": " + json_num(t.measured) +
             ", \"residual\": " + json_num(t.residual) + "}";
    }
    out += first ? "]" : "\n    ]";
  }
  out += "},\n";

  out += "  \"latencies\": [";
  first = true;
  for (const Report::LatencyLine& l : report.latencies) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": " + json_str(l.name) +
           ", \"count\": " + std::to_string(l.count) +
           ", \"mean\": " + json_num(l.mean) +
           ", \"p50\": " + json_num(l.p50) +
           ", \"p95\": " + json_num(l.p95) +
           ", \"p99\": " + json_num(l.p99) + "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace ceresz::obs::analysis
