// Measured-vs-predicted validation of the paper's cost model
// (Formulas 2-4): compare the mapper's analytic per-round terms against
// what the fabric trace actually spent, term by term.
//
// The predictions travel inside the metrics snapshot: WaferMapper
// exports its PerfModel terms as the `ceresz_mapper_predicted_*` gauges
// below (the names are defined here so the mapper and the analysis
// cannot drift apart). A (trace.json, metrics.json) pair is therefore
// self-sufficient — ceresz_report needs no access to the mapper.
#pragma once

#include <string>
#include <vector>

#include "obs/analysis/trace_analysis.h"
#include "obs/metrics.h"

namespace ceresz::obs::analysis {

// Gauges the WaferMapper exports per run (mesh geometry + predicted
// cost-model terms, all in cycles unless noted).
inline constexpr const char* kGaugeMeshRows = "ceresz_mapper_mesh_rows";
inline constexpr const char* kGaugeMeshCols = "ceresz_mapper_mesh_cols";
inline constexpr const char* kGaugePipelineLength =
    "ceresz_mapper_pipeline_length";
inline constexpr const char* kGaugePipelinesPerRow =
    "ceresz_mapper_pipelines_per_row";
inline constexpr const char* kGaugePredictedC1 =
    "ceresz_mapper_predicted_c1_cycles";
inline constexpr const char* kGaugePredictedC2 =
    "ceresz_mapper_predicted_c2_cycles";
inline constexpr const char* kGaugePredictedRelayPerRound =
    "ceresz_mapper_predicted_relay_cycles_per_round";
inline constexpr const char* kGaugePredictedRecvPerRound =
    "ceresz_mapper_predicted_recv_cycles_per_round";
inline constexpr const char* kGaugePredictedComputeTask =
    "ceresz_mapper_predicted_compute_task_cycles";
inline constexpr const char* kGaugePredictedRoundCycles =
    "ceresz_mapper_predicted_round_cycles";
inline constexpr const char* kGaugePredictedTotalCycles =
    "ceresz_mapper_predicted_total_cycles";
inline constexpr const char* kGaugePredictedRounds =
    "ceresz_mapper_predicted_rounds";

/// One model term compared against its measurement. `residual` is the
/// relative error (measured - predicted) / predicted.
struct TermCheck {
  std::string name;     ///< e.g. "relay_per_round"
  std::string formula;  ///< which paper formula the term belongs to
  f64 predicted = 0.0;  ///< cycles
  f64 measured = 0.0;   ///< cycles
  f64 residual = 0.0;
};

struct ModelValidation {
  /// False when the snapshot carries no predictions (mapper ran without
  /// metrics) or the trace has no enriched head PE to measure at;
  /// `unavailable_reason` then says which.
  bool available = false;
  std::string unavailable_reason;

  u64 rounds_measured = 0;  ///< head-0 ingest count (its recv ops)
  std::vector<TermCheck> terms;

  f64 max_abs_residual() const;
};

/// Compare the fabric trace against the predicted gauges in `metrics`.
///
/// Terms produced:
///  - "relay_per_round"  (Formula 2): the pipe-0 head's relay + ingest
///    cycles per round vs (P-1)*C1 + recv_own;
///  - "compute_per_block" (Formula 3): the busiest stage PE's cycles per
///    compute task vs task_overhead + bottleneck group cycles;
///  - "forward_per_block" (Formula 3, only when PL > 1): its send
///    cycles per block vs C2;
///  - "total_cycles"     (Formula 4): trace makespan vs rounds * round.
ModelValidation validate_model(const FabricOccupancy& occ,
                               const MetricsSnapshot& metrics);

}  // namespace ceresz::obs::analysis
