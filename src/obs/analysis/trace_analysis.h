// Trace analytics: turn the Tracer's span stream (in-memory or an
// exported Chrome trace file) into the paper's performance views —
//
//  - a span tree per (pid, tid) with self-time accounting;
//  - per-PE occupancy attribution on the fabric's virtual-cycle clock
//    (Fig. 10): each PE's makespan is partitioned into compute / relay /
//    recv / send so the fractions always sum to <= 1.0, even where the
//    simulator overlaps asynchronous ops with task execution;
//  - pipeline bottleneck extraction: the stage PE each pipeline spends
//    the most compute time on (the quantity Algorithm 1's greedy
//    partitioner minimizes), named down to the dominant sub-stage.
//
// Stage attribution rides on the trace itself: the mapper enriches the
// fabric's per-PE thread names with `pipe=<p> stage=<g>
// stages=<Name>:<cycles>+...` (see WaferMapper), so an exported file is
// self-describing — no side channel needed to re-derive who ran what.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"

namespace ceresz::obs::analysis {

/// One parsed trace span or event with owned strings (TraceEvent keeps
/// only static `const char*` names; file-loaded events need storage).
struct Span {
  std::string name;
  std::string cat;
  char phase = 'X';
  u32 pid = kHostPid;
  u32 tid = 0;
  u64 ts_ns = 0;
  u64 dur_ns = 0;
  std::map<std::string, i64> args;

  u64 end_ns() const { return ts_ns + dur_ns; }
  i64 arg_or(const std::string& key, i64 fallback) const {
    const auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  }
};

/// A whole trace: spans plus the viewer metadata (process/thread names).
struct TraceData {
  std::vector<Span> spans;     ///< 'X' events, ts-sorted
  std::vector<Span> instants;  ///< 'i' and 'C' events
  std::map<u32, std::string> process_names;
  std::map<std::pair<u32, u32>, std::string> thread_names;
  u64 dropped_events = 0;

  const std::string* thread_name(u32 pid, u32 tid) const;
};

/// Parse an exported Chrome trace-event JSON document (the "JSON object
/// format" obs::Tracer writes). Throws ceresz::Error on malformed input.
TraceData load_chrome_trace(std::string_view json_text);

/// Snapshot a live tracer (recording must be quiescent, same contract as
/// Tracer::snapshot_events()).
TraceData from_tracer(const Tracer& tracer);

// ---------------------------------------------------------------------------
// Span trees.

/// One node of a per-thread span tree: a span plus the spans it fully
/// encloses in time, with `self_ns` = duration not covered by children.
struct SpanNode {
  const Span* span = nullptr;
  u64 self_ns = 0;
  std::vector<SpanNode> children;
};

/// Nest one thread's spans by time containment (a span becomes a child of
/// the innermost span that encloses it). `spans` may be any subset of one
/// thread's spans; ordering is normalized internally.
std::vector<SpanNode> build_span_tree(std::vector<const Span*> spans);

/// All spans of one (pid, tid), tree-ified.
std::vector<SpanNode> thread_span_tree(const TraceData& trace, u32 pid,
                                       u32 tid);

// ---------------------------------------------------------------------------
// Fabric occupancy (Fig. 10).

/// The raw-relay dispatch task color of the CereSZ wafer program
/// (mapping::colors::kRelayTask). Task spans carrying this color are
/// relay work, not compute, and are attributed accordingly.
inline constexpr i64 kDefaultRelayTaskColor = 10;

/// The fabric's virtual-clock scale (wse::kTraceNsPerCycle, restated
/// here so the analysis layer stays independent of the simulator):
/// 1 simulated cycle == 1 us of trace time == 1000 ns.
inline constexpr u64 kTraceNsPerCycle = 1000;

/// Modeled cost of one sub-stage family on one PE, parsed from the
/// mapper-enriched thread name.
struct StageShare {
  std::string name;   ///< e.g. "Multiplication", "Bitshuffle"
  f64 cycles = 0.0;   ///< modeled cycles per block
};

/// Identity and schedule position of one fabric PE, parsed from its
/// thread name (`pe[r,c] pipe=P stage=G stages=...`). pipe/stage are -1
/// when the mapper did not enrich the name (e.g. a raw Fabric user).
struct PeIdentity {
  u32 tid = 0;
  u32 row = 0;
  u32 col = 0;
  i32 pipe = -1;
  i32 stage_pos = -1;
  std::vector<StageShare> stages;
};

/// Parse a fabric thread name. Returns nullopt when the name does not
/// start with the `pe[r,c]` convention.
std::optional<PeIdentity> parse_pe_thread_name(const std::string& name);

/// Per-PE activity attribution over the run's makespan. The four
/// fractions are a partition of the PE's *occupied* time (overlapping
/// spans resolved by priority compute > relay > recv > send), so
/// compute_frac + relay_frac + recv_frac + send_frac <= 1.0 always.
struct PeOccupancy {
  PeIdentity pe;
  f64 compute_frac = 0.0;
  f64 relay_frac = 0.0;
  f64 recv_frac = 0.0;
  f64 send_frac = 0.0;
  f64 busy_frac = 0.0;  ///< union of all four (== their sum)

  // Raw totals (virtual-clock ns; divide by kTraceNsPerCycle for
  // cycles). Unlike the fractions these sum overlapping spans at face
  // value — the right quantity for cost-model comparison.
  u64 compute_ns = 0;
  u64 relay_ns = 0;   ///< relay ops + relay-dispatch task spans
  u64 recv_ns = 0;
  u64 send_ns = 0;
  u64 compute_tasks = 0;  ///< blocks computed (compute task spans)
  u64 recv_ops = 0;       ///< blocks ingested (recv op spans)
  u64 relay_ops = 0;      ///< blocks forwarded (relay op spans)
};

struct FabricOccupancy {
  u64 makespan_ns = 0;  ///< last fabric span end (virtual clock)
  std::vector<PeOccupancy> pes;  ///< ordered by (row, col)

  const PeOccupancy* find(u32 row, u32 col) const;
};

/// Attribute every fabric-pid span to its PE. `relay_task_color`
/// identifies relay-dispatch task spans by their "color" arg.
FabricOccupancy fabric_occupancy(
    const TraceData& trace, i64 relay_task_color = kDefaultRelayTaskColor);

// ---------------------------------------------------------------------------
// Pipeline bottlenecks.

/// The critical stage of one pipeline: the PE (= stage group) with the
/// largest total compute time, and the dominant sub-stage inside it.
struct PipelineBottleneck {
  u32 row = 0;
  u32 pipe = 0;
  u32 col = 0;            ///< bottleneck PE's column
  u32 stage_pos = 0;      ///< its position within the pipeline
  f64 compute_frac = 0.0; ///< its compute occupancy of the makespan
  f64 cycles_per_block = 0.0;  ///< measured compute cycles per block
  std::string stage_group;     ///< "Lorenzo+Sign+Max"
  std::string bottleneck_substage;  ///< longest modeled sub-stage
  f64 substage_cycles = 0.0;        ///< its modeled cycles per block
};

/// One entry per (row, pipeline) found in the occupancy. Requires
/// mapper-enriched thread names (PEs with pipe < 0 are skipped).
std::vector<PipelineBottleneck> pipeline_bottlenecks(
    const FabricOccupancy& occ);

}  // namespace ceresz::obs::analysis
