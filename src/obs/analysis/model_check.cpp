#include "obs/analysis/model_check.h"

#include <algorithm>
#include <cmath>

namespace ceresz::obs::analysis {

namespace {

f64 cycles(u64 ns) {
  return static_cast<f64>(ns) / static_cast<f64>(kTraceNsPerCycle);
}

TermCheck make_term(std::string name, std::string formula, f64 predicted,
                    f64 measured) {
  TermCheck t;
  t.name = std::move(name);
  t.formula = std::move(formula);
  t.predicted = predicted;
  t.measured = measured;
  t.residual = predicted != 0.0 ? (measured - predicted) / predicted : 0.0;
  return t;
}

}  // namespace

f64 ModelValidation::max_abs_residual() const {
  f64 worst = 0.0;
  for (const TermCheck& t : terms) {
    worst = std::max(worst, std::abs(t.residual));
  }
  return worst;
}

ModelValidation validate_model(const FabricOccupancy& occ,
                               const MetricsSnapshot& metrics) {
  ModelValidation v;
  const f64 predicted_round = metrics.gauge_value(kGaugePredictedRoundCycles);
  if (predicted_round <= 0.0) {
    v.unavailable_reason =
        "metrics carry no ceresz_mapper_predicted_* gauges (mapper ran "
        "without a metrics registry)";
    return v;
  }

  // The measurement points: the pipe-0 head (Formula 2's busiest relay)
  // and the stage PE with the highest per-block compute (Formula 3's
  // bottleneck group). Both need mapper-enriched thread names.
  const PeOccupancy* head = nullptr;
  const PeOccupancy* bottleneck = nullptr;
  for (const PeOccupancy& pe : occ.pes) {
    if (pe.pe.pipe == 0 && pe.pe.stage_pos == 0 && !head) head = &pe;
    if (pe.compute_tasks > 0) {
      const f64 per_block =
          cycles(pe.compute_ns) / static_cast<f64>(pe.compute_tasks);
      const f64 best =
          bottleneck ? cycles(bottleneck->compute_ns) /
                           static_cast<f64>(bottleneck->compute_tasks)
                     : -1.0;
      if (per_block > best) bottleneck = &pe;
    }
  }
  if (!head || head->recv_ops == 0) {
    v.unavailable_reason =
        "trace has no enriched pipe-0 head PE (thread names lack "
        "pipe=/stage= tokens, or the fabric recorded no spans)";
    return v;
  }

  v.available = true;
  v.rounds_measured = head->recv_ops;
  const f64 rounds = static_cast<f64>(v.rounds_measured);

  // Formula 2: software relay at the head. The head's relay-dispatch
  // tasks + streaming forwards serve the P-1 eastern pipelines; its own
  // ingest (recv op) is the recv_own term. Both scale per round.
  v.terms.push_back(make_term(
      "relay_per_round", "Formula 2",
      metrics.gauge_value(kGaugePredictedRelayPerRound) +
          metrics.gauge_value(kGaugePredictedRecvPerRound),
      (cycles(head->relay_ns) + cycles(head->recv_ns)) / rounds));

  // Formula 3: per-block compute at the bottleneck stage group.
  if (bottleneck) {
    v.terms.push_back(make_term(
        "compute_per_block", "Formula 3",
        metrics.gauge_value(kGaugePredictedComputeTask),
        cycles(bottleneck->compute_ns) /
            static_cast<f64>(bottleneck->compute_tasks)));
    const f64 pl = metrics.gauge_value(kGaugePipelineLength);
    if (pl > 1.0 && bottleneck->send_ns > 0) {
      // The intermediate forward: one send per block at each stage
      // boundary. The send span excludes the single hop cycle C2
      // counts, a sub-percent difference at real block extents.
      v.terms.push_back(make_term(
          "forward_per_block", "Formula 3",
          metrics.gauge_value(kGaugePredictedC2),
          cycles(bottleneck->send_ns) /
              static_cast<f64>(bottleneck->compute_tasks)));
    }
  }

  // Formula 4: whole-run makespan vs rounds * predicted round cycles.
  v.terms.push_back(make_term("total_cycles", "Formula 4",
                              rounds * predicted_round,
                              cycles(occ.makespan_ns)));
  return v;
}

}  // namespace ceresz::obs::analysis
