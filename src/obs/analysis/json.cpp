#include "obs/analysis/json.h"

#include <cctype>
#include <cstdlib>

#include "common/error.h"

namespace ceresz::obs::analysis {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    CERESZ_CHECK(pos_ == s_.size(), "json: trailing bytes after value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    CERESZ_CHECK(pos_ < s_.size(), "json: unexpected end of input");
    const char c = s_[pos_];
    JsonValue v;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("null")) return v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    consume('{');
    if (consume('}')) return v;
    do {
      skip_ws();
      CERESZ_CHECK(pos_ < s_.size() && s_[pos_] == '"',
                   "json: object key must be a string");
      std::string key = parse_string();
      CERESZ_CHECK(consume(':'), "json: expected ':' after object key");
      v.object.emplace(std::move(key), parse_value());
    } while (consume(','));
    CERESZ_CHECK(consume('}'), "json: expected '}'");
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    consume('[');
    if (consume(']')) return v;
    do {
      v.array.push_back(parse_value());
    } while (consume(','));
    CERESZ_CHECK(consume(']'), "json: expected ']'");
    return v;
  }

  std::string parse_string() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        CERESZ_CHECK(pos_ < s_.size(), "json: unterminated escape");
        switch (s_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // Our own writers only emit \u00XX for control bytes; decode
            // the low byte and reject surrogates/astral escapes.
            CERESZ_CHECK(pos_ + 4 < s_.size(), "json: truncated \\u escape");
            unsigned code = 0;
            for (int k = 1; k <= 4; ++k) {
              const char h = s_[pos_ + k];
              CERESZ_CHECK(std::isxdigit(static_cast<unsigned char>(h)),
                           "json: bad \\u escape digit");
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            CERESZ_CHECK(code < 0x80, "json: non-ASCII \\u escape");
            out += static_cast<char>(code);
            pos_ += 4;
            break;
          }
          default:
            CERESZ_FAIL("json: unsupported escape");
        }
        ++pos_;
      } else {
        out += s_[pos_++];
      }
    }
    CERESZ_CHECK(pos_ < s_.size(), "json: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    CERESZ_CHECK(pos_ > start, "json: expected a value");
    const std::string text(s_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(text.c_str(), &end);
    CERESZ_CHECK(end && *end == '\0', "json: malformed number");
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::at(std::string_view key) const {
  static const JsonValue null_value;
  const auto it = object.find(std::string(key));
  return it == object.end() ? null_value : it->second;
}

f64 JsonValue::number_or(std::string_view key, f64 fallback) const {
  const JsonValue& v = at(key);
  return v.kind == Kind::kNumber ? v.number : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue& v = at(key);
  return v.kind == Kind::kString ? v.str : fallback;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::vector<JsonValue> parse_jsonl(std::string_view text) {
  std::vector<JsonValue> out;
  std::size_t line_no = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(begin, end - begin);
    ++line_no;
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (!blank) {
      try {
        out.push_back(parse_json(line));
      } catch (const Error& e) {
        CERESZ_FAIL("jsonl line " + std::to_string(line_no) + ": " +
                    e.what());
      }
    }
    if (end == text.size()) break;
    begin = end + 1;
  }
  return out;
}

}  // namespace ceresz::obs::analysis
