// The perf-regression gate: compare a bench run's history records
// against a committed baseline with noise-aware thresholds.
//
// History format (bench/history/*.jsonl, one record per line):
//   {"bench": "engine_scaling", "metric": "compress_gbps",
//    "value": 12.3, "unit": "GB/s", "better": "higher", "noise": 0.10}
// `noise` is the metric's relative noise band — the deviation a shared
// CI runner can produce without any code change. Simulated metrics
// (makespan cycles, simulated throughput) are deterministic and get
// tight bands; wall-clock metrics get generous ones.
//
// Gate semantics per metric (deviation = relative change in the WORSE
// direction; improvements never trip the gate):
//   deviation <= noise               -> OK
//   deviation <= noise * hard_factor -> WARN (reported, exit 0)
//   deviation  > noise * hard_factor -> FAIL (exit 1)
// so CI can soft-fail inside the band and hard-fail beyond noise x 3.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace ceresz::obs::analysis {

struct HistoryRecord {
  std::string bench;
  std::string metric;
  f64 value = 0.0;
  std::string unit;
  /// "higher" or "lower": which direction is an improvement.
  std::string better = "higher";
  /// Relative noise band, e.g. 0.10 for +-10%.
  f64 noise = 0.10;
  // Provenance metadata (empty = omitted from the JSONL line). Carried
  // for humans diffing history files; the gate never compares it, and
  // the parser treats these — like any other unknown key — as optional,
  // so old and new history files interoperate both ways.
  std::string timestamp;  ///< ISO-8601 UTC, e.g. "2026-02-07T12:00:00Z"
  std::string git_sha;
  std::string host;

  std::string key() const { return bench + "/" + metric; }
  std::string to_jsonl() const;  ///< one line, no trailing newline
};

/// Parse history JSONL. Lines missing "bench"/"metric"/"value" throw;
/// "better" defaults to "higher" and "noise" to 0.10. Unknown keys are
/// ignored, so records from newer writers always parse.
std::vector<HistoryRecord> parse_history_jsonl(std::string_view text);

/// Fill a record's provenance fields from the environment: UTC wall
/// clock, $GITHUB_SHA / $CERESZ_GIT_SHA (first set wins), gethostname.
void stamp_history_metadata(HistoryRecord& record);

enum class GateStatus : u8 { kOk, kWarn, kFail, kMissing };

struct GateResult {
  HistoryRecord baseline;
  f64 current = 0.0;
  /// Relative change in the worse direction (negative = improvement).
  f64 deviation = 0.0;
  GateStatus status = GateStatus::kOk;
};

struct GateReport {
  std::vector<GateResult> results;
  u32 warned = 0;
  u32 failed = 0;   ///< nonzero => the gate's process exit is nonzero
  u32 missing = 0;  ///< baseline metrics absent from the current run
};

/// Evaluate every baseline metric against the current run's records
/// (matched by bench/metric key; extra current-run metrics are ignored
/// — they become baselines on the next refresh). A baseline metric the
/// current run did not produce is reported as kMissing and counted as
/// a warning, not a failure.
GateReport evaluate_gate(const std::vector<HistoryRecord>& baseline,
                         const std::vector<HistoryRecord>& current,
                         f64 hard_factor = 3.0);

/// Human-readable gate table plus a PASS/WARN/FAIL summary line.
std::string render_gate(const GateReport& report);

}  // namespace ceresz::obs::analysis
