#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace ceresz::obs {

namespace {

std::atomic<u64> g_next_tracer_id{1};

// Per-(tracer, thread) ring lookup cache. Entries for dead tracers are
// harmless: their unique ids are never issued again, so a stale raw
// pointer can never match a live lookup.
using TlsEntry = detail::TraceTls;
thread_local std::vector<TlsEntry> g_tls_rings;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Trace-event timestamps are microseconds (doubles).
std::string fmt_us(u64 ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<f64>(ns) / 1000.0);
  return buf;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity) : slots_(capacity) {
  CERESZ_CHECK(capacity >= 1, "TraceRing: capacity must be at least 1");
}

std::vector<TraceEvent> TraceRing::drain_copy() const {
  const u64 n = pushed();
  const u64 cap = slots_.size();
  const u64 start = n > cap ? n - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n - start));
  for (u64 k = start; k < n; ++k) {
    out.push_back(slots_[k % cap]);
  }
  return out;
}

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(now_ns()) {
  CERESZ_CHECK(ring_capacity_ >= 1, "Tracer: ring capacity must be >= 1");
  set_process_name(kHostPid, "ceresz host");
}

u64 Tracer::now_rel_ns() const { return now_ns() - epoch_ns_; }

const detail::TraceTls& Tracer::local_entry() {
  for (const TlsEntry& e : g_tls_rings) {
    if (e.tracer_id == id_) return e;
  }
  auto ring = std::make_shared<TraceRing>(ring_capacity_);
  TlsEntry entry;
  entry.tracer_id = id_;
  entry.ring = ring.get();
  {
    std::lock_guard lock(mu_);
    rings_.push_back(std::move(ring));
    entry.tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  }
  g_tls_rings.push_back(entry);
  return g_tls_rings.back();
}

u32 Tracer::thread_id() { return local_entry().tid; }

void Tracer::record(TraceEvent ev) {
  const TlsEntry& e = local_entry();
  if (ev.tid == 0) ev.tid = e.tid;
  if (ev.trace_id == 0) {
    // Inherit the thread's ambient distributed-trace context so engine
    // chunk spans, pool task wrappers, and fabric band spans are
    // attributable to the request that caused them.
    const TraceContext& ctx = current_trace_context();
    if (ctx.active()) {
      ev.trace_id = ctx.trace_id;
      if (ev.parent_span_id == 0) ev.parent_span_id = ctx.span_id;
    }
  }
  e.ring->push(ev);
}

void Tracer::instant(const char* name, const char* cat,
                     const char* arg1_name, i64 arg1) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'i';
  ev.ts_ns = now_rel_ns();
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  record(ev);
}

void Tracer::counter(const char* name, i64 value) {
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'C';
  ev.ts_ns = now_rel_ns();
  ev.arg1_name = "value";
  ev.arg1 = value;
  record(ev);
}

void Tracer::set_process_name(u32 pid, std::string name) {
  std::lock_guard lock(mu_);
  process_names_[pid] = std::move(name);
}

void Tracer::set_thread_name(u32 pid, u32 tid, std::string name) {
  std::lock_guard lock(mu_);
  thread_names_[{pid, tid}] = std::move(name);
}

u64 Tracer::events_recorded() const {
  std::lock_guard lock(mu_);
  u64 n = 0;
  for (const auto& r : rings_) n += r->pushed();
  return n;
}

u64 Tracer::events_dropped() const {
  std::lock_guard lock(mu_);
  u64 n = 0;
  for (const auto& r : rings_) n += r->dropped();
  return n;
}

std::vector<TraceEvent> Tracer::snapshot_events() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard lock(mu_);
    for (const auto& r : rings_) {
      auto evs = r->drain_copy();
      all.insert(all.end(), evs.begin(), evs.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return all;
}

std::string Tracer::chrome_trace_json() const {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot_events();
  std::map<u32, std::string> process_names;
  std::map<std::pair<u32, u32>, std::string> thread_names;
  {
    std::lock_guard lock(mu_);
    process_names = process_names_;
    thread_names = thread_names_;
  }

  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const auto& [pid, name] : process_names) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const auto& [key, name] : thread_names) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\""
       << json_escape(name) << "\"}}";
  }
  for (const TraceEvent& ev : events) {
    sep();
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << json_escape(*ev.cat ? ev.cat : "default") << "\",\"ph\":\""
       << ev.phase << "\",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid
       << ",\"ts\":" << fmt_us(ev.ts_ns);
    if (ev.phase == 'X') os << ",\"dur\":" << fmt_us(ev.dur_ns);
    if (ev.phase == 'i') os << ",\"s\":\"t\"";
    if (ev.arg1_name || ev.arg2_name || ev.trace_id != 0 ||
        ev.span_id != 0 || ev.parent_span_id != 0) {
      os << ",\"args\":{";
      bool first_arg = true;
      auto arg_sep = [&] {
        if (!first_arg) os << ",";
        first_arg = false;
      };
      if (ev.arg1_name) {
        arg_sep();
        os << "\"" << json_escape(ev.arg1_name) << "\":" << ev.arg1;
      }
      if (ev.arg2_name) {
        arg_sep();
        os << "\"" << json_escape(ev.arg2_name) << "\":" << ev.arg2;
      }
      if (ev.trace_id != 0) {
        arg_sep();
        os << "\"trace_id\":" << ev.trace_id;
      }
      if (ev.span_id != 0) {
        arg_sep();
        os << "\"span_id\":" << ev.span_id;
      }
      if (ev.parent_span_id != 0) {
        arg_sep();
        os << "\"parent_span_id\":" << ev.parent_span_id;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"metadata\":{"
     << "\"dropped_events\":" << events_dropped() << "}}\n";
}

void declare_trace_metrics(MetricsRegistry& reg) {
  reg.counter(kMetricTraceDropped);
}

void export_trace_metrics(const Tracer& tracer, MetricsRegistry& reg) {
  const u64 dropped = tracer.events_dropped();
  if (dropped > 0) reg.counter(kMetricTraceDropped).add(dropped);
  else reg.counter(kMetricTraceDropped);  // declare at zero
}

}  // namespace ceresz::obs
