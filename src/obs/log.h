// obs::Logger — leveled, rate-limited, JSON-lines structured logging.
//
// Each call emits one self-contained JSON object on a single line:
//
//   {"ts_ns":123,"level":"warn","event":"conn.reset","request_id":7}
//
// so `grep event | jq` works on daemon logs without a parser. The
// logger replaces ad-hoc fprintf in the service daemon, ServiceServer,
// and ChaosProxy; human-facing CLI output (usage text, the "listening
// on" line CI greps) stays on printf.
//
// Concurrency: one mutex around format+write makes lines atomic across
// threads. Rate limiting is a token bucket refilled at
// `max_events_per_sec`; over-budget records are counted, not written,
// and a single "log.suppressed" line with the count is emitted when
// capacity returns. Error-level records bypass the limiter — a crash
// report must never be the record that got shed.
#pragma once

#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace ceresz::obs {

enum class LogLevel : u8 { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level);

/// One key/value pair of a structured record. Values keep their JSON
/// type: strings are escaped+quoted, integers and floats emitted bare.
struct LogField {
  enum class Kind : u8 { kString, kInt, kFloat };

  LogField(const char* k, const std::string& v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(const char* k, const char* v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(const char* k, i64 v) : key(k), kind(Kind::kInt), num_i(v) {}
  LogField(const char* k, u64 v)
      : key(k), kind(Kind::kInt), num_i(static_cast<i64>(v)) {}
  LogField(const char* k, u32 v)
      : key(k), kind(Kind::kInt), num_i(static_cast<i64>(v)) {}
  LogField(const char* k, int v)
      : key(k), kind(Kind::kInt), num_i(static_cast<i64>(v)) {}
  LogField(const char* k, f64 v) : key(k), kind(Kind::kFloat), num_f(v) {}

  const char* key;
  Kind kind;
  std::string str;
  i64 num_i = 0;
  f64 num_f = 0.0;
};

struct LoggerOptions {
  LogLevel min_level = LogLevel::kInfo;
  /// Token-bucket rate (and burst) for non-error records; 0 disables
  /// rate limiting entirely.
  u32 max_events_per_sec = 200;
  /// Destination stream; nullptr means stderr. Must outlive the logger.
  std::ostream* sink = nullptr;
};

class Logger {
 public:
  explicit Logger(LoggerOptions options = {});

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void log(LogLevel level, const char* event,
           std::initializer_list<LogField> fields = {});

  void debug(const char* event, std::initializer_list<LogField> f = {}) {
    log(LogLevel::kDebug, event, f);
  }
  void info(const char* event, std::initializer_list<LogField> f = {}) {
    log(LogLevel::kInfo, event, f);
  }
  void warn(const char* event, std::initializer_list<LogField> f = {}) {
    log(LogLevel::kWarn, event, f);
  }
  void error(const char* event, std::initializer_list<LogField> f = {}) {
    log(LogLevel::kError, event, f);
  }

  LogLevel min_level() const { return options_.min_level; }

  /// Records written / shed by the rate limiter, for tests and /metrics.
  u64 emitted() const;
  u64 suppressed() const;

 private:
  void write_record_locked(LogLevel level, const char* event,
                           const LogField* fields, std::size_t n_fields,
                           u64 ts);

  LoggerOptions options_;
  mutable std::mutex mu_;
  std::ostream* sink_;         // resolved (never null)
  f64 tokens_;                 // token bucket, <= max_events_per_sec
  u64 last_refill_ns_ = 0;
  u64 pending_suppressed_ = 0; // shed since the last emitted line
  u64 emitted_ = 0;
  u64 suppressed_ = 0;
  std::string line_;           // reused scratch buffer
};

/// Parse "debug"/"info"/"warn"/"error" (case-sensitive). Returns false
/// and leaves `out` untouched on anything else.
bool parse_log_level(const std::string& text, LogLevel& out);

}  // namespace ceresz::obs
