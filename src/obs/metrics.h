// MetricsRegistry: named counters, gauges, and fixed-bucket histograms
// shared by the engine, the WSE simulator, and the mapper.
//
// Design goals, in order:
//   - cheap concurrent updates: counters are sharded over cache-line-
//     padded atomics (uncontended fetch_add on the hot path, no locks);
//     gauges are a single atomic; histogram buckets are atomics.
//   - a consistent snapshot(): every metric is read through its atomics
//     at one point in time and returned as plain values, sorted by name,
//     so two exporters of the same snapshot always agree.
//   - two exporters over the same snapshot: JSON (machine-readable run
//     summaries) and the Prometheus text exposition format (scrapable).
//
// Naming convention (see docs/observability.md): prometheus-style
// `ceresz_<layer>_<what>[_total]`, e.g. `ceresz_engine_retries_total`.
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime; look them up once and keep the reference.
#pragma once

#include <array>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace ceresz::obs {

namespace detail {

/// One cache line per shard so concurrent writers never false-share.
struct alignas(64) PaddedAtomicU64 {
  std::atomic<u64> v{0};
};

/// Stable per-thread shard index (hash of the thread id).
std::size_t thread_shard();

inline u64 f64_bits(f64 v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline f64 bits_f64(u64 bits) {
  f64 v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace detail

/// Monotonic counter. add() is wait-free on the calling thread's shard;
/// value() sums the shards (exact once writers are quiescent, a valid
/// momentary lower bound while they are not).
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void add(u64 n = 1) {
    shards_[detail::thread_shard() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  u64 value() const {
    u64 sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  std::array<detail::PaddedAtomicU64, kShards> shards_;
};

/// Last-write-wins floating-point gauge.
class Gauge {
 public:
  void set(f64 v) {
    bits_.store(detail::f64_bits(v), std::memory_order_relaxed);
  }

  void add(f64 delta) {
    u64 cur = bits_.load(std::memory_order_relaxed);
    for (;;) {
      const u64 next = detail::f64_bits(detail::bits_f64(cur) + delta);
      if (bits_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
        return;
      }
    }
  }

  f64 value() const {
    return detail::bits_f64(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<u64> bits_{0};
};

/// Fixed-bucket histogram with inclusive upper bounds (Prometheus `le`
/// semantics): observe(v) lands in the first bucket whose bound >= v,
/// or the implicit +Inf overflow bucket. The per-snapshot count is
/// derived from the bucket counts, so count == sum(buckets) always.
class Histogram {
 public:
  explicit Histogram(std::vector<f64> bounds);

  void observe(f64 v);

  /// Bulk-merge: add `n` observations directly to bucket `idx`
  /// (bounds().size() = the +Inf overflow bucket) and `sum` to the
  /// running total. Used by MetricsRegistry::accumulate.
  void merge_bucket(std::size_t idx, u64 n);
  void merge_sum(f64 sum);

  const std::vector<f64>& bounds() const { return bounds_; }

  /// Per-bucket counts; one extra trailing slot for +Inf.
  std::vector<u64> bucket_counts() const;

  f64 sum() const {
    return detail::bits_f64(sum_bits_.load(std::memory_order_relaxed));
  }

 private:
  std::vector<f64> bounds_;  // strictly increasing
  std::unique_ptr<std::atomic<u64>[]> counts_;  // bounds_.size() + 1
  std::atomic<u64> sum_bits_{0};
};

/// Point-in-time values of every metric in a registry, sorted by name.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    u64 value = 0;
  };
  struct GaugeSample {
    std::string name;
    f64 value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::vector<f64> bounds;
    std::vector<u64> counts;  ///< per bucket, +Inf overflow last
    f64 sum = 0.0;
    u64 count = 0;            ///< sum of `counts`

    /// Quantile estimate (p in [0, 1]) by linear interpolation within
    /// the inclusive-le buckets: the p*count-th observation is located
    /// in its bucket and placed proportionally between the bucket's
    /// lower and upper bound (first bucket's lower bound is 0). A
    /// quantile landing in the +Inf overflow bucket reports the last
    /// finite bound. NaN when the histogram is empty.
    f64 quantile(f64 p) const;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Value of a named counter, 0 when absent.
  u64 counter_value(std::string_view name) const;

  /// Value of a named gauge, 0.0 when absent.
  f64 gauge_value(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned reference stays valid for the
  /// registry's lifetime. Creating is mutex-protected (do it once per
  /// run, not per update); updating through the handle is lock-free.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must be strictly increasing; an existing histogram keeps
  /// its original bounds (they must match).
  Histogram& histogram(std::string_view name, std::vector<f64> bounds);

  /// Latency buckets in seconds: 100us .. 10s, roughly 1-2-5 spaced.
  static std::vector<f64> default_seconds_buckets();

  MetricsSnapshot snapshot() const;

  /// Fold a snapshot into this registry: counters add, gauges set,
  /// histograms merge bucket-wise (created on demand with the
  /// snapshot's bounds). Used to roll per-run registries up into a
  /// long-lived serving registry.
  void accumulate(const MetricsSnapshot& snap);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Exporters (both render the same snapshot; see docs/observability.md).
std::string to_json(const MetricsSnapshot& snap);
std::string to_prometheus(const MetricsSnapshot& snap);

/// True when `path` names a Prometheus text export: a case-insensitive
/// ".prom" extension (".prom", ".PROM", ".Prom", ...). Everything else
/// gets JSON. Used by the CLIs' --metrics-out handling.
bool is_prometheus_path(std::string_view path);

}  // namespace ceresz::obs
