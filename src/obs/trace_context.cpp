#include "obs/trace_context.h"

#include <unistd.h>

#include <atomic>

#include "common/timer.h"

namespace ceresz::obs {

namespace {

thread_local TraceContext g_ambient;

// Seed the trace-id sequence from the wall clock and pid so two
// processes started together (client and server in the same CI step)
// draw from disjoint ranges. The low 16 bits are a per-process counter,
// the upper bits the seed, the whole thing masked to 48 bits — see the
// header for why 48.
u64 trace_id_seed() {
  static const u64 seed = [] {
    u64 s = now_ns();
    s ^= static_cast<u64>(::getpid()) << 24;
    // splitmix-style finalizer to spread the entropy across the word.
    s ^= s >> 30;
    s *= 0xbf58476d1ce4e5b9ull;
    s ^= s >> 27;
    s *= 0x94d049bb133111ebull;
    s ^= s >> 31;
    return s;
  }();
  return seed;
}

std::atomic<u64> g_next_trace{1};
std::atomic<u64> g_next_span{1};

}  // namespace

u64 next_trace_id() {
  // 24 seed bits + 24 counter bits = 48: 16M ids per process before the
  // sequence wraps, with distinct processes almost surely disjoint.
  const u64 n = g_next_trace.fetch_add(1, std::memory_order_relaxed);
  const u64 id = ((trace_id_seed() & 0xffffff) << 24) | (n & 0xffffff);
  return id != 0 ? id : 1;  // 0 is the "no trace" sentinel
}

u64 next_span_id() {
  return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

const TraceContext& current_trace_context() { return g_ambient; }

TraceContextScope::TraceContextScope(TraceContext ctx) : prev_(g_ambient) {
  g_ambient = ctx;
}

TraceContextScope::~TraceContextScope() { g_ambient = prev_; }

}  // namespace ceresz::obs
