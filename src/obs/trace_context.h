// Ambient trace context: the (trace id, span id) pair that links every
// event a thread records — engine chunk spans, fabric band spans, pool
// task wrappers — back to the originating service request.
//
// The context is thread-local. Establish it with a TraceContextScope at
// the point where a request enters a thread (server worker picking up a
// PendingRequest, pool worker starting a captured task) and everything
// recorded underneath inherits it without any API plumbing:
// Tracer::record() stamps events whose trace_id is still zero with the
// ambient context. Crossing threads is explicit — capture
// current_trace_context() where the work is *submitted* and re-scope it
// where the work *runs* (engine::ThreadPool does this for every task).
//
// Ids: trace ids are bounded to 48 bits so they survive a round trip
// through JSON tooling that stores numbers as doubles (2^53 mantissa);
// span ids come from a process-wide counter and are unique within a
// process, which is all the stitcher needs (it matches on the
// (trace_id, span_id) pair, never on a span id alone).
#pragma once

#include "common/types.h"

namespace ceresz::obs {

/// The propagated pair. trace_id == 0 means "no active trace".
struct TraceContext {
  u64 trace_id = 0;  ///< whole-request identity, 48-bit
  u64 span_id = 0;   ///< the span that is the parent of new work

  bool active() const { return trace_id != 0; }
};

/// New 48-bit trace id, unique within this process and seeded so
/// concurrent processes (client vs server) almost surely disagree.
u64 next_trace_id();

/// New span id, unique within this process (never 0).
u64 next_span_id();

/// The calling thread's ambient context ({0,0} when none is active).
const TraceContext& current_trace_context();

/// RAII: installs `ctx` as the calling thread's ambient context for the
/// guard's lifetime and restores the previous context on destruction.
/// Scopes nest; an inactive ctx (trace_id == 0) still installs (useful
/// for deliberately clearing the context on a reused thread).
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace ceresz::obs
