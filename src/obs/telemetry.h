// Live telemetry plane: a recent-span ring (SpanLog) and a tiny HTTP
// endpoint (TelemetryEndpoint) that serves it next to the metrics
// registry, so a running daemon can be inspected with nothing but curl:
//
//   GET /metrics  -> Prometheus text exposition of the live registry
//   GET /healthz  -> 200 "ok" (503 "draining" once drain begins)
//   GET /tracez   -> JSON dump of the most recent completed request
//                    spans (trace id, request id, tenant, timing, status)
//
// The Tracer's per-thread rings are single-writer and cannot be read
// while the server records into them, so /tracez is fed by SpanLog — a
// small mutex-guarded ring the server pushes one summary record into
// per completed request. That keeps the live path safe and bounds the
// dump size by construction.
//
// The listener is deliberately minimal: loopback-only POSIX sockets, a
// poll loop with a stop flag, one request per connection, GET only. It
// lives in src/obs (not src/net) because ceresz_net links ceresz_obs —
// reusing net::Socket here would cycle the layering.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"

namespace ceresz::obs {

class MetricsRegistry;
class Logger;

/// Summary of one completed request span, as shown by /tracez.
struct SpanRecord {
  u64 trace_id = 0;
  u64 request_id = 0;
  u32 tenant_id = 0;
  std::string name;    ///< e.g. "server.request"
  std::string status;  ///< "ok" or the error class
  u64 ts_ns = 0;       ///< start, tracer-relative
  u64 dur_ns = 0;
};

/// Thread-safe fixed-capacity ring of recently completed spans
/// (drop-oldest). Unlike the Tracer rings this is safe to read while
/// writers are active — /tracez depends on that.
class SpanLog {
 public:
  explicit SpanLog(std::size_t capacity = 256);

  void push(SpanRecord rec);

  /// Surviving records, oldest first.
  std::vector<SpanRecord> snapshot() const;

  /// Records ever pushed (monotonic).
  u64 pushed() const;

  /// {"spans":[...],"pushed":N} for /tracez.
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> slots_;
  u64 count_ = 0;
};

struct TelemetryOptions {
  u16 port = 0;  ///< 0 = kernel-assigned ephemeral port
  /// Scraped by /metrics. May be null (404 then). Must outlive the
  /// endpoint; snapshot() is safe against concurrent updates.
  MetricsRegistry* metrics = nullptr;
  /// Dumped by /tracez. May be null (404 then). Must outlive the
  /// endpoint.
  SpanLog* spans = nullptr;
  /// Optional request/error log. Must outlive the endpoint.
  Logger* logger = nullptr;
};

class TelemetryEndpoint {
 public:
  explicit TelemetryEndpoint(TelemetryOptions options);
  ~TelemetryEndpoint();

  TelemetryEndpoint(const TelemetryEndpoint&) = delete;
  TelemetryEndpoint& operator=(const TelemetryEndpoint&) = delete;

  /// Bind 127.0.0.1, listen, and start the serving thread. Throws
  /// common::Error on bind failure.
  void start();

  /// The bound port (valid after start()).
  u16 port() const { return port_; }

  /// Flip /healthz to 503 "draining" (idempotent).
  void set_draining(bool draining) {
    draining_.store(draining, std::memory_order_release);
  }

  /// Stop serving and join the thread (idempotent).
  void stop();

  u64 requests_served() const {
    return served_.load(std::memory_order_acquire);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  TelemetryOptions options_;
  int listen_fd_ = -1;
  u16 port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::atomic<u64> served_{0};
};

}  // namespace ceresz::obs
