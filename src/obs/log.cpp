#include "obs/log.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <ostream>

#include "common/timer.h"

namespace ceresz::obs {

namespace {

void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (const char* p = s; *p; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

bool parse_log_level(const std::string& text, LogLevel& out) {
  if (text == "debug") { out = LogLevel::kDebug; return true; }
  if (text == "info") { out = LogLevel::kInfo; return true; }
  if (text == "warn") { out = LogLevel::kWarn; return true; }
  if (text == "error") { out = LogLevel::kError; return true; }
  return false;
}

Logger::Logger(LoggerOptions options)
    : options_(options),
      sink_(options.sink != nullptr ? options.sink : &std::cerr),
      tokens_(static_cast<f64>(options.max_events_per_sec)),
      last_refill_ns_(now_ns()) {}

u64 Logger::emitted() const {
  std::lock_guard lock(mu_);
  return emitted_;
}

u64 Logger::suppressed() const {
  std::lock_guard lock(mu_);
  return suppressed_;
}

void Logger::log(LogLevel level, const char* event,
                 std::initializer_list<LogField> fields) {
  if (level < options_.min_level) return;
  const u64 ts = now_ns();

  std::lock_guard lock(mu_);
  const bool limited = options_.max_events_per_sec > 0;
  if (limited) {
    // Refill the bucket from elapsed wall time, capped at one second's
    // worth of burst.
    const f64 rate = static_cast<f64>(options_.max_events_per_sec);
    const u64 elapsed = ts > last_refill_ns_ ? ts - last_refill_ns_ : 0;
    last_refill_ns_ = ts;
    tokens_ = std::min(rate, tokens_ + rate * static_cast<f64>(elapsed) / 1e9);
    if (level != LogLevel::kError && tokens_ < 1.0) {
      ++pending_suppressed_;
      ++suppressed_;
      return;
    }
    if (level != LogLevel::kError) tokens_ -= 1.0;
  }
  if (pending_suppressed_ > 0) {
    const LogField count("count", pending_suppressed_);
    pending_suppressed_ = 0;
    write_record_locked(LogLevel::kWarn, "log.suppressed", &count, 1, ts);
  }
  write_record_locked(level, event, fields.begin(), fields.size(), ts);
}

void Logger::write_record_locked(LogLevel level, const char* event,
                                 const LogField* fields,
                                 std::size_t n_fields, u64 ts) {
  line_.clear();
  line_ += "{\"ts_ns\":";
  line_ += std::to_string(ts);
  line_ += ",\"level\":\"";
  line_ += log_level_name(level);
  line_ += "\",\"event\":";
  append_json_string(line_, event);
  for (std::size_t i = 0; i < n_fields; ++i) {
    const LogField& f = fields[i];
    line_ += ',';
    append_json_string(line_, f.key);
    line_ += ':';
    switch (f.kind) {
      case LogField::Kind::kString:
        append_json_string(line_, f.str.c_str());
        break;
      case LogField::Kind::kInt:
        line_ += std::to_string(f.num_i);
        break;
      case LogField::Kind::kFloat: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", f.num_f);
        line_ += buf;
        break;
      }
    }
  }
  line_ += "}\n";
  sink_->write(line_.data(), static_cast<std::streamsize>(line_.size()));
  sink_->flush();
  ++emitted_;
}

}  // namespace ceresz::obs
