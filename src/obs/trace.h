// Tracer: RAII scoped spans and instant/counter events recorded into
// per-thread ring buffers, exported as Chrome trace-event JSON (open the
// file in Perfetto or chrome://tracing).
//
// Hot path: recording an event is one index increment and one struct
// store into the calling thread's own ring — no locks, no allocation
// (event names are static strings; numeric context travels in two typed
// args). A full ring drops its OLDEST event and counts the drop, so
// memory stays bounded at `ring_capacity` events per thread.
//
// Disabled overhead: every instrumentation site takes an `obs::Tracer*`
// and does nothing when it is null — SpanGuard then skips even the
// clock read — so a build running without a tracer pays one pointer
// test per site.
//
// Clocks: host events are stamped with now_ns() (common/timer.h)
// relative to the tracer's construction. The WSE simulator records on a
// VIRTUAL clock instead — simulated cycles, exported under its own
// process id (kFabricPid) at 1 cycle == 1 us of trace time — so a
// single file shows wall-clock host work next to a Fig. 10-style
// per-PE cycle timeline.
//
// write_chrome_trace()/chrome_trace_json() must not race with recording:
// flush after worker pools have been joined / runs have finished (the
// engine, mapper, and CLI all do).
#pragma once

#include <atomic>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace ceresz::obs {

class MetricsRegistry;

/// Trace process ids: host wall-clock events vs the simulator's virtual
/// cycle timeline.
inline constexpr u32 kHostPid = 1;
inline constexpr u32 kFabricPid = 2;

/// Ring-overflow events (oldest-dropped) across all recording threads,
/// exported so a truncated trace is detectable from metrics alone.
inline constexpr const char* kMetricTraceDropped =
    "ceresz_obs_trace_dropped_total";

/// One trace event. Names/categories must be string literals (or
/// otherwise outlive the tracer); per-event numbers go in the args.
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  char phase = 'X';   ///< 'X' complete, 'i' instant, 'C' counter
  u32 pid = kHostPid;
  u32 tid = 0;        ///< 0 = stamp with the recording thread's id
  u64 ts_ns = 0;      ///< relative to the tracer epoch (host) or virtual
  u64 dur_ns = 0;     ///< 'X' only
  const char* arg1_name = nullptr;
  i64 arg1 = 0;
  const char* arg2_name = nullptr;
  i64 arg2 = 0;
  // Distributed-trace identity (obs/trace_context.h). A zero trace_id
  // is filled from the recording thread's ambient context by record();
  // span_id is only set on spans that other spans reference (client
  // attempts, server request roots). Exported into the Chrome-trace
  // args object when nonzero.
  u64 trace_id = 0;
  u64 span_id = 0;
  u64 parent_span_id = 0;
};

class TraceRing;

namespace detail {
/// Per-(tracer, thread) ring lookup cache entry (see trace.cpp).
struct TraceTls {
  u64 tracer_id = 0;
  TraceRing* ring = nullptr;
  u32 tid = 0;
};
}  // namespace detail

/// Single-writer ring buffer of TraceEvents. The owning thread pushes;
/// readers must wait for it to quiesce (drain_copy is NOT synchronized
/// against a concurrent push).
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void push(const TraceEvent& ev) {
    const u64 n = count_.load(std::memory_order_relaxed);
    slots_[n % slots_.size()] = ev;
    count_.store(n + 1, std::memory_order_release);
  }

  /// Events ever pushed (monotonic).
  u64 pushed() const { return count_.load(std::memory_order_acquire); }

  /// Events overwritten because the ring was full (drop-oldest).
  u64 dropped() const {
    const u64 n = pushed();
    return n > slots_.size() ? n - slots_.size() : 0;
  }

  /// Surviving events, oldest first.
  std::vector<TraceEvent> drain_copy() const;

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<u64> count_{0};
};

class Tracer {
 public:
  /// `ring_capacity`: events retained per recording thread.
  explicit Tracer(std::size_t ring_capacity = std::size_t{1} << 16);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Nanoseconds since this tracer was constructed (host clock).
  u64 now_rel_ns() const;

  /// Convert an absolute now_ns() reading into this tracer's relative
  /// timeline (clamped to 0 for readings that predate the tracer). Lets
  /// callers stamp spans from timestamps captured elsewhere, e.g. a
  /// request's arrival time captured before the span's name is known.
  u64 to_rel_ns(u64 abs_ns) const {
    return abs_ns > epoch_ns_ ? abs_ns - epoch_ns_ : 0;
  }

  /// Small stable id of the calling thread within this tracer (>= 1).
  u32 thread_id();

  /// Record an event. A zero tid is replaced by the calling thread's
  /// id; ts/dur are taken as given (SpanGuard fills them for you).
  void record(TraceEvent ev);

  /// Instant event ('i') stamped now on the calling thread.
  void instant(const char* name, const char* cat,
               const char* arg1_name = nullptr, i64 arg1 = 0);

  /// Counter sample ('C') stamped now; rendered as a counter track.
  void counter(const char* name, i64 value);

  /// Display names for the trace viewer (cold path, mutex-protected).
  void set_process_name(u32 pid, std::string name);
  void set_thread_name(u32 pid, u32 tid, std::string name);

  u64 events_recorded() const;
  u64 events_dropped() const;

  /// All surviving events, ts-sorted. Recording must be quiescent.
  std::vector<TraceEvent> snapshot_events() const;

  /// Chrome trace-event JSON (the "JSON object format": traceEvents +
  /// metadata). Recording must be quiescent.
  std::string chrome_trace_json() const;
  void write_chrome_trace(std::ostream& os) const;

 private:
  const detail::TraceTls& local_entry();

  const std::size_t ring_capacity_;
  const u64 id_;        ///< globally unique, for the thread-local cache
  const u64 epoch_ns_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<TraceRing>> rings_;
  std::map<u32, std::string> process_names_;
  std::map<std::pair<u32, u32>, std::string> thread_names_;
  std::atomic<u32> next_tid_{1};
};

/// Pre-create the tracer metric families in `reg` at zero.
void declare_trace_metrics(MetricsRegistry& reg);

/// Export the tracer's cumulative drop count into `reg` as
/// `ceresz_obs_trace_dropped_total`. Call once per flush (the counter
/// is monotonic; re-exporting the same tracer would double-count).
void export_trace_metrics(const Tracer& tracer, MetricsRegistry& reg);

/// RAII scoped span: records one complete ('X') event covering its own
/// lifetime. Null-tracer-safe (does nothing, reads no clock).
class SpanGuard {
 public:
  explicit SpanGuard(Tracer* t, const char* name, const char* cat = "",
                     const char* arg1_name = nullptr, i64 arg1 = 0,
                     const char* arg2_name = nullptr, i64 arg2 = 0)
      : t_(t) {
    if (!t_) return;
    ev_.name = name;
    ev_.cat = cat;
    ev_.arg1_name = arg1_name;
    ev_.arg1 = arg1;
    ev_.arg2_name = arg2_name;
    ev_.arg2 = arg2;
    ev_.ts_ns = t_->now_rel_ns();
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  ~SpanGuard() {
    if (!t_) return;
    ev_.dur_ns = t_->now_rel_ns() - ev_.ts_ns;
    t_->record(ev_);
  }

 private:
  Tracer* t_;
  TraceEvent ev_{};
};

}  // namespace ceresz::obs
