#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <thread>

#include "common/error.h"

namespace ceresz::obs {

namespace detail {

std::size_t thread_shard() {
  thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shard;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<f64> bounds) : bounds_(std::move(bounds)) {
  CERESZ_CHECK(!bounds_.empty(), "Histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    CERESZ_CHECK(bounds_[i - 1] < bounds_[i],
                 "Histogram: bucket bounds must be strictly increasing");
  }
  counts_ = std::make_unique<std::atomic<u64>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(f64 v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  u64 cur = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const u64 next = detail::f64_bits(detail::bits_f64(cur) + v);
    if (sum_bits_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

void Histogram::merge_bucket(std::size_t idx, u64 n) {
  CERESZ_CHECK(idx <= bounds_.size(), "Histogram: bucket index out of range");
  counts_[idx].fetch_add(n, std::memory_order_relaxed);
}

void Histogram::merge_sum(f64 sum) {
  u64 cur = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const u64 next = detail::f64_bits(detail::bits_f64(cur) + sum);
    if (sum_bits_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

std::vector<u64> Histogram::bucket_counts() const {
  std::vector<u64> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

f64 MetricsSnapshot::HistogramSample::quantile(f64 p) const {
  if (count == 0) return std::numeric_limits<f64>::quiet_NaN();
  p = std::clamp(p, 0.0, 1.0);
  const f64 target = p * static_cast<f64>(count);
  u64 cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const u64 before = cumulative;
    cumulative += counts[i];
    if (counts[i] == 0 || static_cast<f64>(cumulative) < target) continue;
    if (i >= bounds.size()) {
      // +Inf overflow bucket: no finite upper edge to interpolate to.
      return bounds.empty() ? std::numeric_limits<f64>::quiet_NaN()
                            : bounds.back();
    }
    const f64 lower = i == 0 ? 0.0 : bounds[i - 1];
    const f64 within =
        (target - static_cast<f64>(before)) / static_cast<f64>(counts[i]);
    return lower + within * (bounds[i] - lower);
  }
  return bounds.empty() ? std::numeric_limits<f64>::quiet_NaN()
                        : bounds.back();
}

u64 MetricsSnapshot::counter_value(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

f64 MetricsSnapshot::gauge_value(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<f64> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  } else {
    CERESZ_CHECK(it->second->bounds() == bounds,
                 "MetricsRegistry: histogram re-registered with different "
                 "bucket bounds");
  }
  return *it->second;
}

std::vector<f64> MetricsRegistry::default_seconds_buckets() {
  return {1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
          1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0};
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramSample s;
    s.name = name;
    s.bounds = h->bounds();
    s.counts = h->bucket_counts();
    s.sum = h->sum();
    for (u64 c : s.counts) s.count += c;
    snap.histograms.push_back(std::move(s));
  }
  // std::map iteration is already name-sorted; keep that contract explicit.
  return snap;
}

void MetricsRegistry::accumulate(const MetricsSnapshot& snap) {
  for (const auto& c : snap.counters) counter(c.name).add(c.value);
  for (const auto& g : snap.gauges) gauge(g.name).set(g.value);
  for (const auto& h : snap.histograms) {
    Histogram& dst = histogram(h.name, h.bounds);
    CERESZ_CHECK(dst.bounds() == h.bounds,
                 "MetricsRegistry::accumulate: bucket bounds mismatch");
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] > 0) dst.merge_bucket(i, h.counts[i]);
    }
    dst.merge_sum(h.sum);
  }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(f64 v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(c.name) +
           "\": " + std::to_string(c.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    // JSON has no Inf/NaN literals; clamp them to null.
    const std::string v =
        std::isfinite(g.value) ? fmt_double(g.value) : "null";
    out += "    \"" + json_escape(g.name) + "\": " + v;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(h.name) + "\": {\"buckets\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      const std::string le =
          i < h.bounds.size() ? fmt_double(h.bounds[i]) : "null";
      out += "{\"le\": " + le + ", \"count\": " +
             std::to_string(h.counts[i]) + "}";
    }
    out += "], \"sum\": " + fmt_double(h.sum) +
           ", \"count\": " + std::to_string(h.count) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snap.gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " " + fmt_double(g.value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    u64 cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.bounds.size() ? fmt_double(h.bounds[i]) : "+Inf";
      out += h.name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += h.name + "_sum " + fmt_double(h.sum) + "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

bool is_prometheus_path(std::string_view path) {
  constexpr std::string_view ext = ".prom";
  if (path.size() < ext.size()) return false;
  const std::string_view tail = path.substr(path.size() - ext.size());
  for (std::size_t i = 0; i < ext.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(tail[i])) != ext[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace ceresz::obs
